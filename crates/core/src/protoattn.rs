//! Prototypes Attentive Modeling — ProtoAttn (paper §VI, Algorithm 2).
//!
//! Instead of all-pairs attention between `l` segments (`O(l²)`), ProtoAttn
//! computes attention between the `k` *prototype queries* and the `l` segment
//! keys, then routes each segment to its assigned prototype's output through
//! the one-hot assignment matrix `A`:
//!
//! ```text
//! C_Q = C·W_E          (k × d)   prototype queries          (Eq. 14)
//! K   = P·W_K,  V = P·W_V  (l × d)
//! α   = softmax(C_Q·Kᵀ / √d)    (k × l)                     (Eq. 16)
//! out = A · (α · V)             (l × d)                     (Eq. 18)
//! ```
//!
//! Segments sharing a prototype receive identical attention summaries
//! (Eq. 19); total complexity is `O(k·l·d)` — linear in `l`.

use focus_autograd::{Graph, ParamStore, ParamVars, Var};
use focus_cluster::Prototypes;
use focus_nn::{CostReport, Linear};
use focus_tensor::Tensor;
use rand::Rng;

/// How input segments are mapped onto prototype buckets.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Assignment {
    /// One-hot nearest-prototype assignment (the paper's choice, Eq. 15).
    Hard,
    /// Softmax over negative composite distances with the given temperature —
    /// a design-ablation alternative benchmarked in `focus-bench`.
    Soft {
        /// Softmax temperature; smaller is closer to hard assignment.
        temperature: f32,
    },
}

/// A precomputed routing decision for ProtoAttn forwards.
///
/// Hard assignment is carried as a flat prototype-index vector: the forward
/// pass gathers each segment's prototype summary (`O(B·l·d)`) instead of
/// multiplying by a materialised `[B, l, k]` one-hot matrix
/// (`O(B·l·k·d)` plus a wasted `O(B·l·k·d)` backward for the constant
/// matrix's gradient). Soft assignment keeps the dense mixture matrix.
#[derive(Clone, Debug)]
pub enum RoutingPlan {
    /// One-hot routing as `indices[bi·l + i] = j` — the dense matrix is
    /// never built on this path.
    Hard {
        /// Assigned prototype per segment slot, `[B·l]`.
        indices: Vec<u32>,
        /// Batch size `B`.
        b: usize,
        /// Segments per batch element `l`.
        l: usize,
        /// Number of prototypes `k`.
        k: usize,
    },
    /// Dense soft-mixture routing.
    Soft {
        /// The mixture matrix `[B, l, k]`; rows are distributions.
        matrix: Tensor,
    },
}

impl RoutingPlan {
    /// The `(B, l, k)` routing dimensions.
    pub fn dims(&self) -> (usize, usize, usize) {
        match self {
            RoutingPlan::Hard { b, l, k, .. } => (*b, *l, *k),
            RoutingPlan::Soft { matrix } => {
                let d = matrix.dims();
                (d[0], d[1], d[2])
            }
        }
    }

    /// Materialises the dense `[B, l, k]` assignment matrix (diagnostics,
    /// the Fig. 13 dependency matrix, tests).
    pub fn to_matrix(&self) -> Tensor {
        match self {
            RoutingPlan::Hard { indices, b, l, k } => {
                focus_tensor::route::one_hot_matrix(indices, *b, *l, *k)
            }
            RoutingPlan::Soft { matrix } => matrix.clone(),
        }
    }

    /// The routing for the axes-swapped view `[l, B, ·]` used by the entity
    /// branch — a pure index permutation on the hard path.
    pub fn swap01(&self) -> RoutingPlan {
        match self {
            RoutingPlan::Hard { indices, b, l, k } => {
                let mut swapped = vec![0u32; indices.len()];
                for bi in 0..*b {
                    for i in 0..*l {
                        swapped[i * b + bi] = indices[bi * l + i];
                    }
                }
                RoutingPlan::Hard {
                    indices: swapped,
                    b: *l,
                    l: *b,
                    k: *k,
                }
            }
            RoutingPlan::Soft { matrix } => {
                let (b, l, k) = (matrix.dims()[0], matrix.dims()[1], matrix.dims()[2]);
                let mut out = Tensor::zeros(&[l, b, k]);
                for bi in 0..b {
                    for i in 0..l {
                        out.data_mut()[(i * b + bi) * k..(i * b + bi + 1) * k]
                            .copy_from_slice(&matrix.data()[(bi * l + i) * k..(bi * l + i + 1) * k]);
                    }
                }
                RoutingPlan::Soft { matrix: out }
            }
        }
    }
}

impl Assignment {
    /// Nearest-prototype index per segment slot of `segments: [B, l, p]`,
    /// flat `[B·l]` — the sparse form of the hard one-hot matrix, computed
    /// with the batched GEMM assignment kernel.
    pub fn indices(segments: &Tensor, prototypes: &Prototypes) -> Vec<u32> {
        let (b, l, p) = check_segments(segments, prototypes);
        prototypes
            .assign_all(&segments.reshape(&[b * l, p]))
            .into_iter()
            .map(|j| j as u32)
            .collect()
    }

    /// Builds the routing plan for `segments: [B, l, p]` against the offline
    /// prototypes (Algorithm 2, lines 1–4).
    ///
    /// This runs outside the autograd graph: routing is data, not a
    /// trainable quantity. Both variants evaluate Eq. 6 through the batched
    /// GEMM distance kernel rather than a per-pair scalar loop.
    pub fn plan(&self, segments: &Tensor, prototypes: &Prototypes) -> RoutingPlan {
        focus_trace::span!("model/routing");
        let (b, l, p) = check_segments(segments, prototypes);
        let k = prototypes.k();
        match self {
            Assignment::Hard => {
                focus_trace::counter_add("route/hard_plans", 1);
                RoutingPlan::Hard {
                    indices: Assignment::indices(segments, prototypes),
                    b,
                    l,
                    k,
                }
            }
            Assignment::Soft { temperature } => {
                focus_trace::counter_add("route/soft_plans", 1);
                let t = temperature.max(1e-4);
                let mut d = prototypes.distances(&segments.reshape(&[b * l, p]));
                for row in d.data_mut().chunks_exact_mut(k) {
                    for slot in row.iter_mut() {
                        *slot = -*slot / t;
                    }
                    // Shared max-subtract softmax kernel — one definition for
                    // every softmax in the workspace.
                    focus_tensor::fused::softmax_row(row);
                }
                d.reshape_in_place(&[b, l, k]);
                RoutingPlan::Soft { matrix: d }
            }
        }
    }

    /// The dense assignment matrix `A: [B, l, k]` — [`Assignment::plan`]
    /// materialised, kept for diagnostics and the dependency matrix.
    pub fn matrix(&self, segments: &Tensor, prototypes: &Prototypes) -> Tensor {
        self.plan(segments, prototypes).to_matrix()
    }
}

/// Validates `segments: [B, l, p]` against the prototype set, returning
/// `(B, l, p)`.
fn check_segments(segments: &Tensor, prototypes: &Prototypes) -> (usize, usize, usize) {
    assert_eq!(segments.rank(), 3, "segments must be [B, l, p]");
    let (b, l, p) = (segments.dims()[0], segments.dims()[1], segments.dims()[2]);
    assert_eq!(
        p,
        prototypes.segment_len(),
        "segment length {p} != prototype length {}",
        prototypes.segment_len()
    );
    (b, l, p)
}

/// The ProtoAttn block: learnable projections around a fixed prototype set.
pub struct ProtoAttn {
    w_e: Linear,
    w_k: Linear,
    w_v: Linear,
    prototypes: Tensor,
    kv_dim: usize,
    d: usize,
}

impl ProtoAttn {
    /// Builds a block for prototypes of shape `[k, p]`, embedding into
    /// feature width `d`. Keys/values are projected from raw segments
    /// (`kv_dim = p`, Eq. 14).
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamStore,
        name: &str,
        prototypes: &Prototypes,
        d: usize,
        rng: &mut R,
    ) -> Self {
        let p = prototypes.segment_len();
        Self::with_kv_dim(ps, name, prototypes, p, d, rng)
    }

    /// Builds a block whose keys/values are projected from `kv_dim`-wide
    /// inputs instead of raw segments — used by the stacked layers of the
    /// multi-layer extractor extension, which attend over `d`-wide features.
    pub fn with_kv_dim<R: Rng + ?Sized>(
        ps: &mut ParamStore,
        name: &str,
        prototypes: &Prototypes,
        kv_dim: usize,
        d: usize,
        rng: &mut R,
    ) -> Self {
        let p = prototypes.segment_len();
        ProtoAttn {
            w_e: Linear::new_no_bias(ps, &format!("{name}.w_e"), p, d, rng),
            w_k: Linear::new_no_bias(ps, &format!("{name}.w_k"), kv_dim, d, rng),
            w_v: Linear::new_no_bias(ps, &format!("{name}.w_v"), kv_dim, d, rng),
            prototypes: prototypes.centers().clone(),
            kv_dim,
            d,
        }
    }

    /// Feature width `d`.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Number of prototypes `k`.
    pub fn k(&self) -> usize {
        self.prototypes.dims()[0]
    }

    /// Segment length `p`.
    pub fn segment_len(&self) -> usize {
        self.prototypes.dims()[1]
    }

    /// Applies ProtoAttn to `segments: [B, l, kv_dim]` under `routing`,
    /// returning `[B, l, d]` (Algorithm 2).
    ///
    /// Hard routing gathers each segment's prototype summary through the
    /// sparse `RouteOneHot` op; soft routing multiplies by the dense mixture
    /// matrix. The hard path is bitwise-identical to the dense one-hot
    /// `bmm` at any thread count (see `focus_tensor::route`).
    pub fn forward(&self, g: &mut Graph, pv: &ParamVars, segments: Var, routing: &RoutingPlan) -> Var {
        focus_trace::span!("model/protoattn");
        let dims = g.value(segments).dims().to_vec();
        if focus_trace::enabled() && dims.len() == 3 {
            focus_trace::counter_add("flops/protoattn_est", self.cost(dims[0], dims[1]).flops);
        }
        assert_eq!(dims.len(), 3, "ProtoAttn expects [B, l, kv_dim] inputs");
        assert_eq!(dims[2], self.kv_dim, "ProtoAttn input width mismatch");
        assert_eq!(
            routing.dims(),
            (dims[0], dims[1], self.k()),
            "routing plan must cover [B, l, k]"
        );

        let c = g.constant(self.prototypes.clone());
        let c_q = self.w_e.forward(g, pv, c); // [k, d]
        let keys = self.w_k.forward(g, pv, segments); // [B, l, d]
        let values = self.w_v.forward(g, pv, segments); // [B, l, d]
        let scores = g.matmul_broadcast_nt(c_q, keys); // [B, k, l]
        let scaled = g.scale(scores, 1.0 / (self.d as f32).sqrt());
        let alpha = g.softmax_last(scaled); // [B, k, l]
        let head = g.bmm(alpha, values); // [B, k, d]
        match routing {
            RoutingPlan::Hard { indices, l, .. } => g.route_one_hot(head, indices, *l),
            RoutingPlan::Soft { matrix } => {
                let a = g.constant(matrix.clone());
                g.bmm(a, head) // [B, l, d]
            }
        }
    }

    /// The learned long-range dependency matrix `A · α ∈ [B, l, l]` of
    /// Fig. 13: row `i` shows how much segment `i`'s summary attends to each
    /// other segment.
    pub fn dependency_matrix(
        &self,
        ps: &ParamStore,
        segments: &Tensor,
        assign: &Tensor,
    ) -> Tensor {
        let mut g = Graph::new();
        let pv = ps.register(&mut g);
        let seg_v = g.constant(segments.clone());
        let c = g.constant(self.prototypes.clone());
        let c_q = self.w_e.forward(&mut g, &pv, c);
        let keys = self.w_k.forward(&mut g, &pv, seg_v);
        let scores = g.matmul_broadcast_nt(c_q, keys);
        let scaled = g.scale(scores, 1.0 / (self.d as f32).sqrt());
        let alpha = g.softmax_last(scaled); // [B, k, l]
        let a_v = g.constant(assign.clone());
        let dep = g.bmm(a_v, alpha); // [B, l, l]
        g.value(dep).clone()
    }

    /// Analytic cost over a batch of `b` sequences of `l` segments
    /// (the `O(l·(k·d + d²) + k·d²)` of the paper's complexity analysis).
    pub fn cost(&self, b: usize, l: usize) -> CostReport {
        let k = self.k();
        let p = self.kv_dim;
        // Prototype queries are computed once per forward (shared over batch).
        let proto_proj = self.w_e.cost(k);
        let kv_proj = self.w_k.cost(b * l) + self.w_v.cost(b * l);
        // scores (k·l·d) and context (k·l·d) GEMMs, softmax, then sparse
        // one-hot routing: an O(l·d) gather instead of the dense
        // [l, k]·[k, d] bmm (and no wasted backward through a constant
        // one-hot). Live activations: the [b, k, l] score matrix and the
        // [b, l, d] routed output.
        let attn = CostReport {
            flops: 2 * (2 * b * k * l * self.d) as u64
                + 5 * (b * k * l) as u64
                + (b * l * self.d) as u64,
            params: 0,
            peak_mem_bytes: ((b * k * l).max(b * l * self.d) * 4) as u64,
        };
        // Assignment via the batched two-GEMM distance kernel: 2·(2·l·k·p)
        // GEMM flops plus centring/normalisation (~6·l·p) and the distance
        // epilogue (~4·l·k). Live scratch is two [block, k] distance tiles
        // plus the flat index vector — the [b, l, k] one-hot is never
        // materialised on the hard path.
        let block = (b * l).min(4096);
        let assign = CostReport {
            flops: (4 * b * l * k * p + 6 * b * l * p + 4 * b * l * k) as u64,
            params: 0,
            peak_mem_bytes: (2 * block * k * 4 + b * l * 4) as u64,
        };
        proto_proj + kv_proj + attn + assign
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_cluster::Objective;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn proto_fixture() -> Prototypes {
        // Two orthogonal "shapes": rising ramp and falling ramp.
        Prototypes::from_centers(
            Tensor::from_vec(vec![-1.0, -0.33, 0.33, 1.0, 1.0, 0.33, -0.33, -1.0], &[2, 4]),
            Objective::rec_corr(0.2),
        )
    }

    #[test]
    fn hard_assignment_is_one_hot_and_correct() {
        let protos = proto_fixture();
        // Segment 0 rises, segment 1 falls.
        let segs = Tensor::from_vec(
            vec![-2.0, -0.7, 0.7, 2.0, 0.5, 0.2, -0.2, -0.5],
            &[1, 2, 4],
        );
        let a = Assignment::Hard.matrix(&segs, &protos);
        assert_eq!(a.dims(), &[1, 2, 2]);
        assert_eq!(a.at3(0, 0, 0), 1.0);
        assert_eq!(a.at3(0, 0, 1), 0.0);
        assert_eq!(a.at3(0, 1, 1), 1.0);
    }

    #[test]
    fn soft_assignment_rows_are_distributions() {
        let protos = proto_fixture();
        let segs = Tensor::from_vec(
            vec![-2.0, -0.7, 0.7, 2.0, 0.5, 0.2, -0.2, -0.5],
            &[1, 2, 4],
        );
        let a = Assignment::Soft { temperature: 1.0 }.matrix(&segs, &protos);
        for i in 0..2 {
            let sum: f32 = (0..2).map(|j| a.at3(0, i, j)).sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // The rising segment must still prefer the rising prototype.
        assert!(a.at3(0, 0, 0) > a.at3(0, 0, 1));
    }

    #[test]
    fn forward_shape_and_eq19_property() {
        // Segments assigned to the same prototype get identical outputs
        // (Eq. 19).
        let mut rng = StdRng::seed_from_u64(5);
        let protos = proto_fixture();
        let mut ps = ParamStore::new();
        let pa = ProtoAttn::new(&mut ps, "pa", &protos, 8, &mut rng);
        // Three segments; 0 and 2 are both rising → same bucket.
        let segs = Tensor::from_vec(
            vec![
                -2.0, -0.7, 0.7, 2.0, // rising
                0.5, 0.2, -0.2, -0.5, // falling
                -1.0, -0.3, 0.3, 1.0, // rising
            ],
            &[1, 3, 4],
        );
        let plan = Assignment::Hard.plan(&segs, &protos);
        let mut g = Graph::new();
        let pv = ps.register(&mut g);
        let seg_v = g.constant(segs);
        let out = pa.forward(&mut g, &pv, seg_v, &plan);
        assert_eq!(g.value(out).dims(), &[1, 3, 8]);
        let row0: Vec<f32> = (0..8).map(|j| g.value(out).at3(0, 0, j)).collect();
        let row2: Vec<f32> = (0..8).map(|j| g.value(out).at3(0, 2, j)).collect();
        assert_eq!(row0, row2, "same-bucket segments must share outputs");
    }

    #[test]
    fn gradients_flow_to_all_projections() {
        let mut rng = StdRng::seed_from_u64(6);
        let protos = proto_fixture();
        let mut ps = ParamStore::new();
        let pa = ProtoAttn::new(&mut ps, "pa", &protos, 4, &mut rng);
        let segs = Tensor::randn(&[2, 3, 4], 1.0, &mut rng);
        let plan = Assignment::Hard.plan(&segs, &protos);
        let mut g = Graph::new();
        let pv = ps.register(&mut g);
        let seg_v = g.constant(segs);
        let out = pa.forward(&mut g, &pv, seg_v, &plan);
        let sq = g.mul(out, out);
        let loss = g.mean_all(sq);
        g.backward(loss);
        // All three projection weights must receive gradients.
        assert!(ps.grad_norm(&g, &pv) > 0.0);
        for (id, name, _) in ps.iter() {
            let grad = g.grad(pv.var(id));
            assert!(grad.is_some(), "{name} has no gradient");
        }
    }

    #[test]
    fn hard_plan_indices_agree_with_dense_matrix() {
        let protos = proto_fixture();
        let mut rng = StdRng::seed_from_u64(11);
        let segs = Tensor::randn(&[3, 5, 4], 1.0, &mut rng);
        let plan = Assignment::Hard.plan(&segs, &protos);
        let dense = plan.to_matrix();
        let RoutingPlan::Hard { ref indices, b, l, k } = plan else {
            panic!("hard assignment must produce a Hard plan");
        };
        assert_eq!((b, l, k), (3, 5, 2));
        assert_eq!(indices.len(), 15);
        for bi in 0..3 {
            for i in 0..5 {
                for j in 0..2 {
                    let expect = if indices[bi * 5 + i] as usize == j { 1.0 } else { 0.0 };
                    assert_eq!(dense.at3(bi, i, j), expect);
                }
            }
        }
        // swap01 permutes indices exactly like a dense axis swap.
        let swapped = plan.swap01();
        let RoutingPlan::Hard { indices: ref si, b: sb, l: sl, .. } = swapped else {
            panic!("swap01 must stay hard");
        };
        assert_eq!((sb, sl), (5, 3));
        for bi in 0..3 {
            for i in 0..5 {
                assert_eq!(si[i * 3 + bi], indices[bi * 5 + i]);
            }
        }
    }

    #[test]
    fn sparse_routing_matches_dense_bmm_forward_and_backward() {
        // The hard path (RouteOneHot gather) must be bitwise-identical to
        // routing through the materialised one-hot matrix — outputs and
        // parameter gradients alike.
        let mut rng = StdRng::seed_from_u64(12);
        let protos = proto_fixture();
        let mut ps = ParamStore::new();
        let pa = ProtoAttn::new(&mut ps, "pa", &protos, 8, &mut rng);
        let segs = Tensor::randn(&[2, 6, 4], 1.0, &mut rng);
        let hard = Assignment::Hard.plan(&segs, &protos);
        let dense = RoutingPlan::Soft { matrix: hard.to_matrix() };

        let run = |routing: &RoutingPlan| {
            let mut g = Graph::new();
            let pv = ps.register(&mut g);
            let seg_v = g.constant(segs.clone());
            let out = pa.forward(&mut g, &pv, seg_v, routing);
            let sq = g.mul(out, out);
            let loss = g.mean_all(sq);
            g.backward(loss);
            let grads: Vec<Vec<f32>> = ps
                .iter()
                .map(|(id, name, _)| {
                    g.grad(pv.var(id))
                        .unwrap_or_else(|| panic!("{name} has no gradient"))
                        .data()
                        .to_vec()
                })
                .collect();
            (g.value(out).data().to_vec(), grads)
        };
        let (out_sparse, grads_sparse) = run(&hard);
        let (out_dense, grads_dense) = run(&dense);
        assert_eq!(out_sparse, out_dense, "forward diverged");
        assert_eq!(grads_sparse, grads_dense, "parameter gradients diverged");
    }

    #[test]
    fn dependency_matrix_rows_are_distributions() {
        let mut rng = StdRng::seed_from_u64(7);
        let protos = proto_fixture();
        let mut ps = ParamStore::new();
        let pa = ProtoAttn::new(&mut ps, "pa", &protos, 4, &mut rng);
        let segs = Tensor::randn(&[1, 5, 4], 1.0, &mut rng);
        let a = Assignment::Hard.matrix(&segs, &protos);
        let dep = pa.dependency_matrix(&ps, &segs, &a);
        assert_eq!(dep.dims(), &[1, 5, 5]);
        for i in 0..5 {
            let sum: f32 = (0..5).map(|j| dep.at3(0, i, j)).sum();
            assert!((sum - 1.0).abs() < 1e-4, "row {i} sums to {sum}");
        }
    }

    #[test]
    fn cost_is_linear_in_sequence_length() {
        let mut rng = StdRng::seed_from_u64(8);
        let protos = proto_fixture();
        let mut ps = ParamStore::new();
        let pa = ProtoAttn::new(&mut ps, "pa", &protos, 16, &mut rng);
        let c1 = pa.cost(1, 64);
        let c2 = pa.cost(1, 128);
        let ratio = c2.flops as f64 / c1.flops as f64;
        assert!(
            (ratio - 2.0).abs() < 0.2,
            "doubling l should ~double FLOPs, ratio {ratio}"
        );
    }
}
