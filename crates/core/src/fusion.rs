//! The Parallel Fusion Module (paper §VII-B, Algorithm 4).
//!
//! A fixed number `m` of learnable readout queries attend over each branch's
//! features, producing `m × d` summaries `F_t` and `F_e`; a gating network
//! mixes them and a projection head maps the result to the forecast horizon.
//! Because `m` is fixed, the module is linear in both `l` and `N`.
//!
//! Note on Algorithm 4's dimensions: the paper writes
//! `A_t = softmax(H_t·Qᵀ/√d)` followed by `F_t = A_t·H_t`, whose shapes
//! (`[l, m]` × `[l, d]`) do not compose; the intended Perceiver-style readout
//! is `F_t = softmax(Q·H_tᵀ/√d)·H_t ∈ R^{m×d}`, which is what we implement.

use focus_autograd::{Graph, ParamId, ParamStore, ParamVars, Var};
use focus_nn::{init, CostReport, Linear};
use rand::Rng;

/// Readout-query fusion of the two branch feature tensors.
pub struct ParallelFusion {
    queries: ParamId,
    gate: Linear,
    head: Linear,
    m: usize,
    d: usize,
    horizon: usize,
}

impl ParallelFusion {
    /// Builds a fusion module with `m` readout queries over feature width
    /// `d`, projecting to `horizon` future steps per entity.
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamStore,
        name: &str,
        m: usize,
        d: usize,
        horizon: usize,
        rng: &mut R,
    ) -> Self {
        let queries = ps.add(format!("{name}.queries"), init::normal(&[m, d], 0.5, rng));
        ParallelFusion {
            queries,
            gate: Linear::new(ps, &format!("{name}.gate"), 2 * d, d, rng),
            head: Linear::new(ps, &format!("{name}.head"), m * d, horizon, rng),
            m,
            d,
            horizon,
        }
    }

    /// Number of readout queries `m`.
    pub fn readout_queries(&self) -> usize {
        self.m
    }

    /// Forecast horizon.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// One branch's readout: `F = softmax(Q·Hᵀ/√d)·H ∈ [N, m, d]`.
    fn readout(&self, g: &mut Graph, q: Var, h: Var) -> Var {
        let scores = g.matmul_broadcast_nt(q, h); // [N, m, l]
        let scaled = g.scale(scores, 1.0 / (self.d as f32).sqrt());
        let attn = g.softmax_last(scaled);
        g.bmm(attn, h) // [N, m, d]
    }

    /// Fuses `h_t` and `h_e` (both `[N, l, d]`) into a forecast `[N, horizon]`.
    pub fn forward(&self, g: &mut Graph, pv: &ParamVars, h_t: Var, h_e: Var) -> Var {
        focus_trace::span!("model/fusion");
        let n = g.value(h_t).dims()[0];
        assert_eq!(g.value(h_t).dims(), g.value(h_e).dims(), "branch shape mismatch");
        assert_eq!(g.value(h_t).dims()[2], self.d, "feature width mismatch");

        let q = pv.var(self.queries); // [m, d]
        let f_t = self.readout(g, q, h_t); // [N, m, d]
        let f_e = self.readout(g, q, h_e); // [N, m, d]

        // Gating (Algorithm 4 lines 5–7).
        let f_proj = g.concat_last(f_t, f_e); // [N, m, 2d]
        let gate_logits = self.gate.forward(g, pv, f_proj); // [N, m, d]
        let gate = g.sigmoid(gate_logits);
        let gated_t = g.mul(gate, f_t);
        let neg_gate = g.neg(gate);
        let one_minus = g.add_scalar(neg_gate, 1.0);
        let gated_e = g.mul(one_minus, f_e);
        let fused = g.add(gated_t, gated_e); // [N, m, d]

        // Projection to the horizon (Algorithm 4 line 8).
        let flat = g.reshape(fused, &[n, self.m * self.d]);
        self.head.forward(g, pv, flat) // [N, horizon]
    }

    /// Analytic cost for `n` entities × `l` segments.
    pub fn cost(&self, n: usize, l: usize) -> CostReport {
        // Two readouts: scores + aggregation, each 2·n·m·l·d MACs.
        let readouts = CostReport {
            flops: 2 * (4 * n * self.m * l * self.d) as u64 + 2 * 5 * (n * self.m * l) as u64,
            params: self.d as u64 * self.m as u64, // the queries
            peak_mem_bytes: (n * self.m * l * 4) as u64,
        };
        let gate = self.gate.cost(n * self.m);
        let mix = CostReport::pointwise(n * self.m * self.d, 4);
        let head = self.head.cost(n);
        readouts + gate + mix + head
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_autograd::AdamW;
    use focus_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture(m: usize, d: usize, horizon: usize) -> (ParamStore, ParallelFusion) {
        let mut rng = StdRng::seed_from_u64(31);
        let mut ps = ParamStore::new();
        let fusion = ParallelFusion::new(&mut ps, "fusion", m, d, horizon, &mut rng);
        (ps, fusion)
    }

    #[test]
    fn forward_shape() {
        let (ps, fusion) = fixture(3, 8, 12);
        let mut rng = StdRng::seed_from_u64(32);
        let mut g = Graph::new();
        let pv = ps.register(&mut g);
        let h_t = g.constant(Tensor::randn(&[5, 7, 8], 1.0, &mut rng));
        let h_e = g.constant(Tensor::randn(&[5, 7, 8], 1.0, &mut rng));
        let y = fusion.forward(&mut g, &pv, h_t, h_e);
        assert_eq!(g.value(y).dims(), &[5, 12]);
        assert!(g.value(y).all_finite());
    }

    #[test]
    fn gate_mixes_branches() {
        // With identical branches the output must equal the single-branch
        // readout regardless of the gate (g·F + (1−g)·F = F): a sanity check
        // of the mixing algebra.
        let (ps, fusion) = fixture(2, 4, 6);
        let mut rng = StdRng::seed_from_u64(33);
        let h = Tensor::randn(&[3, 5, 4], 1.0, &mut rng);
        let mut g = Graph::new();
        let pv = ps.register(&mut g);
        let h_t = g.constant(h.clone());
        let h_e = g.constant(h.clone());
        let y_same = fusion.forward(&mut g, &pv, h_t, h_e);
        // Recompute with a perturbed second branch: output must change.
        let h_e2 = g.constant(h.add_scalar(1.0));
        let y_diff = fusion.forward(&mut g, &pv, h_t, h_e2);
        assert!(g.value(y_same).max_abs_diff(g.value(y_diff)) > 1e-4);
    }

    #[test]
    fn trains_toward_target() {
        let (mut ps, fusion) = fixture(2, 4, 3);
        let mut rng = StdRng::seed_from_u64(34);
        let h_t = Tensor::randn(&[2, 6, 4], 1.0, &mut rng);
        let h_e = Tensor::randn(&[2, 6, 4], 1.0, &mut rng);
        let target = Tensor::randn(&[2, 3], 1.0, &mut rng);
        let mut opt = AdamW::new(0.02, 0.0);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..200 {
            let mut g = Graph::new();
            let pv = ps.register(&mut g);
            let ht = g.constant(h_t.clone());
            let he = g.constant(h_e.clone());
            let tv = g.constant(target.clone());
            let y = fusion.forward(&mut g, &pv, ht, he);
            let loss = g.mse(y, tv);
            g.backward(loss);
            ps.step(&mut opt, &g, &pv);
            if step == 0 {
                first = g.value(loss).item();
            }
            last = g.value(loss).item();
        }
        assert!(last < first * 0.1, "first {first}, last {last}");
    }

    #[test]
    fn cost_linear_in_l_and_n() {
        let (_, fusion) = fixture(4, 16, 24);
        let base = fusion.cost(8, 16);
        let double_l = fusion.cost(8, 32);
        let double_n = fusion.cost(16, 16);
        // The head is per-entity constant; readouts are linear. Ratios must
        // be well under quadratic.
        assert!((double_l.flops as f64) < 2.2 * base.flops as f64);
        assert!((double_n.flops as f64) < 2.2 * base.flops as f64);
    }
}
