//! The dual-branch feature extractor (paper §VII-A, Algorithm 3).
//!
//! Given a lookback window `X: [N, L]` cut into `l = L/p` segments per
//! entity:
//!
//! * the **temporal branch** runs ProtoAttn over each entity's `l` segments,
//!   modelling dependencies *across time* within an entity;
//! * the **entity branch** runs ProtoAttn over the `N` entities' segments at
//!   each segment position, modelling dependencies *across entities* at the
//!   same time.
//!
//! Both are wrapped in `LayerNorm(OnlineModeling(P) + Embed(P))`. The paper's
//! Algorithm 3 writes the residual as `+ P`, with `P ∈ R^{l×p}` and the
//! attention output in `R^{l×d}`; since those widths differ, the standard
//! resolution — a shared linear input embedding `p → d` providing the
//! residual path — is used here (this is also what PatchTST does with its
//! patch embedding).

use crate::protoattn::{Assignment, ProtoAttn, RoutingPlan};
use focus_autograd::{Graph, ParamId, ParamStore, ParamVars, Var};
use focus_cluster::Prototypes;
use focus_nn::{init, CostReport, LayerNorm, Linear};
use focus_tensor::Tensor;
use rand::Rng;

/// Segment embedding with learnable temporal positional encodings:
/// `E[n, i, :] = P[n, i, :]·W + b + pos[i, :]`.
///
/// ProtoAttn's readout (and the downstream Parallel Fusion) is otherwise
/// permutation-invariant over segments — without a positional term the model
/// cannot tell *when* a motif occurred, which forecasting obviously needs.
/// The paper does not spell this out, but every patch-transformer it builds
/// on (PatchTST, Crossformer) carries positional embeddings.
pub struct SegmentEmbedding {
    linear: Linear,
    pos: ParamId,
    n_segments: usize,
    d: usize,
}

impl SegmentEmbedding {
    /// An embedding `p → d` for windows of exactly `n_segments` segments.
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamStore,
        name: &str,
        p: usize,
        d: usize,
        n_segments: usize,
        rng: &mut R,
    ) -> Self {
        SegmentEmbedding {
            linear: Linear::new(ps, &format!("{name}.linear"), p, d, rng),
            pos: ps.add(format!("{name}.pos"), init::normal(&[n_segments, d], 0.1, rng)),
            n_segments,
            d,
        }
    }

    /// Embeds `segments: [N, l, p]` into `[N, l, d]`, adding the positional
    /// table (broadcast over entities).
    pub fn forward(&self, g: &mut Graph, pv: &ParamVars, segments: Var) -> Var {
        let dims = g.value(segments).dims().to_vec();
        assert_eq!(dims.len(), 3, "SegmentEmbedding expects [N, l, p]");
        assert_eq!(
            dims[1], self.n_segments,
            "window has {} segments, embedding built for {}",
            dims[1], self.n_segments
        );
        let emb = self.linear.forward(g, pv, segments); // [N, l, d]
        let flat = g.reshape(emb, &[dims[0], self.n_segments * self.d]);
        let pos = g.reshape(pv.var(self.pos), &[self.n_segments * self.d]);
        let with_pos = g.add_row_broadcast(flat, pos);
        g.reshape(with_pos, &[dims[0], self.n_segments, self.d])
    }

    /// Analytic cost over `n` entities.
    pub fn cost(&self, n: usize) -> CostReport {
        self.linear.cost(n * self.n_segments)
            + CostReport {
                flops: (n * self.n_segments * self.d) as u64,
                params: (self.n_segments * self.d) as u64,
                peak_mem_bytes: (n * self.n_segments * self.d * 4) as u64,
            }
    }
}

/// One stacked refinement layer of a branch: ProtoAttn over the previous
/// features plus residual + LayerNorm.
struct RefineLayer {
    attn: ProtoAttn,
    ln: LayerNorm,
}

/// Dual-branch extractor producing aligned `[N, l, d]` temporal and entity
/// feature tensors.
///
/// The paper uses a single layer per branch (§VIII-A); `new_stacked` builds
/// the natural multi-layer extension where additional ProtoAttn layers
/// refine the `d`-wide features (assignments stay fixed to the raw-segment
/// buckets).
pub struct DualBranchExtractor {
    embed: SegmentEmbedding,
    temporal: ProtoAttn,
    entity: ProtoAttn,
    ln_t: LayerNorm,
    ln_e: LayerNorm,
    temporal_stack: Vec<RefineLayer>,
    entity_stack: Vec<RefineLayer>,
    assignment: Assignment,
    prototypes: Prototypes,
    segment_len: usize,
    d: usize,
}

impl DualBranchExtractor {
    /// Builds the paper's single-layer extractor around an offline prototype
    /// set, for windows of exactly `n_segments` segments.
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamStore,
        name: &str,
        prototypes: &Prototypes,
        d: usize,
        n_segments: usize,
        assignment: Assignment,
        rng: &mut R,
    ) -> Self {
        Self::new_stacked(ps, name, prototypes, d, n_segments, 1, assignment, rng)
    }

    /// Builds an extractor with `n_layers ≥ 1` ProtoAttn layers per branch.
    #[allow(clippy::too_many_arguments)]
    pub fn new_stacked<R: Rng + ?Sized>(
        ps: &mut ParamStore,
        name: &str,
        prototypes: &Prototypes,
        d: usize,
        n_segments: usize,
        n_layers: usize,
        assignment: Assignment,
        rng: &mut R,
    ) -> Self {
        assert!(n_layers >= 1, "need at least one extractor layer");
        let p = prototypes.segment_len();
        let mut temporal_stack = Vec::new();
        let mut entity_stack = Vec::new();
        for layer in 1..n_layers {
            temporal_stack.push(RefineLayer {
                attn: ProtoAttn::with_kv_dim(
                    ps,
                    &format!("{name}.temporal{layer}"),
                    prototypes,
                    d,
                    d,
                    rng,
                ),
                ln: LayerNorm::new(ps, &format!("{name}.ln_t{layer}"), d),
            });
            entity_stack.push(RefineLayer {
                attn: ProtoAttn::with_kv_dim(
                    ps,
                    &format!("{name}.entity{layer}"),
                    prototypes,
                    d,
                    d,
                    rng,
                ),
                ln: LayerNorm::new(ps, &format!("{name}.ln_e{layer}"), d),
            });
        }
        DualBranchExtractor {
            embed: SegmentEmbedding::new(ps, &format!("{name}.embed"), p, d, n_segments, rng),
            temporal: ProtoAttn::new(ps, &format!("{name}.temporal"), prototypes, d, rng),
            entity: ProtoAttn::new(ps, &format!("{name}.entity"), prototypes, d, rng),
            ln_t: LayerNorm::new(ps, &format!("{name}.ln_t"), d),
            ln_e: LayerNorm::new(ps, &format!("{name}.ln_e"), d),
            temporal_stack,
            entity_stack,
            assignment,
            prototypes: prototypes.clone(),
            segment_len: p,
            d,
        }
    }

    /// Number of ProtoAttn layers per branch.
    pub fn n_layers(&self) -> usize {
        1 + self.temporal_stack.len()
    }

    /// Feature width `d`.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Segment length `p`.
    pub fn segment_len(&self) -> usize {
        self.segment_len
    }

    /// The temporal-branch ProtoAttn (exposed for the Fig. 13 case study).
    pub fn temporal_attn(&self) -> &ProtoAttn {
        &self.temporal
    }

    /// Computes the temporal routing plan for a window `x: [N, L]` (the
    /// entity branch reuses it with axes swapped, since both views contain
    /// the same segments). Hard assignment stays sparse end to end.
    pub fn routing(&self, x: &Tensor) -> RoutingPlan {
        let segs = self.segment_view(x);
        self.assignment.plan(&segs, &self.prototypes)
    }

    /// The dense temporal assignment matrix `A_t: [N, l, k]` — kept for the
    /// Fig. 13 dependency matrix and diagnostics; the forward path uses
    /// [`DualBranchExtractor::routing`].
    pub fn assignments(&self, x: &Tensor) -> Tensor {
        self.routing(x).to_matrix()
    }

    /// Reshapes a window `[N, L]` into the temporal segment view `[N, l, p]`.
    pub fn segment_view(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 2, "window must be [N, L]");
        let (n, len) = (x.dims()[0], x.dims()[1]);
        let p = self.segment_len;
        assert_eq!(len % p, 0, "lookback {len} not divisible by segment length {p}");
        x.reshape(&[n, len / p, p])
    }

    /// Runs both branches on window `x: [N, L]` with the precomputed
    /// temporal routing plan, returning `(H_t, H_e)`, each `[N, l, d]`.
    pub fn forward(
        &self,
        g: &mut Graph,
        pv: &ParamVars,
        x: &Tensor,
        routing: &RoutingPlan,
    ) -> (Var, Var) {
        let segs_t = self.segment_view(x); // [N, l, p]
        let p_t = g.constant(segs_t);

        // Shared input embedding provides the residual path.
        let emb_t = self.embed.forward(g, pv, p_t); // [N, l, d]

        // Temporal branch.
        let attn_t = self.temporal.forward(g, pv, p_t, routing);
        let sum_t = g.add(attn_t, emb_t);
        let mut h_t = self.ln_t.forward(g, pv, sum_t); // [N, l, d]
        for layer in &self.temporal_stack {
            let refined = layer.attn.forward(g, pv, h_t, routing);
            let sum = g.add(refined, h_t);
            h_t = layer.ln.forward(g, pv, sum);
        }

        // Entity branch: same segments viewed as [l, N, p] with swapped
        // routing (a pure index permutation on the hard path).
        let routing_e = routing.swap01(); // [l, N, k]
        let p_e = g.swap_axes01(p_t); // [l, N, p]
        let emb_e = g.swap_axes01(emb_t); // [l, N, d] (embedding is pointwise per segment)
        let attn_e = self.entity.forward(g, pv, p_e, &routing_e);
        let sum_e = g.add(attn_e, emb_e);
        let mut h_e_raw = self.ln_e.forward(g, pv, sum_e); // [l, N, d]
        for layer in &self.entity_stack {
            let refined = layer.attn.forward(g, pv, h_e_raw, &routing_e);
            let sum = g.add(refined, h_e_raw);
            h_e_raw = layer.ln.forward(g, pv, sum);
        }
        let h_e = g.swap_axes01(h_e_raw); // [N, l, d]

        (h_t, h_e)
    }

    /// Analytic cost for a window of `n` entities × `l` segments.
    pub fn cost(&self, n: usize, l: usize) -> CostReport {
        let mut total = self.embed.cost(n)
            + self.temporal.cost(n, l)
            + self.entity.cost(l, n)
            + self.ln_t.cost(n * l)
            + self.ln_e.cost(n * l);
        for layer in self.temporal_stack.iter() {
            total = total + layer.attn.cost(n, l) + layer.ln.cost(n * l);
        }
        for layer in self.entity_stack.iter() {
            total = total + layer.attn.cost(l, n) + layer.ln.cost(n * l);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_cluster::{segment_matrix, ClusterConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (ParamStore, DualBranchExtractor, Tensor) {
        let mut rng = StdRng::seed_from_u64(21);
        // A small periodic multivariate window.
        let n = 4;
        let len = 32;
        let data: Vec<f32> = (0..n * len)
            .map(|i| {
                let e = i / len;
                let t = i % len;
                ((t as f32 * 0.4) + e as f32).sin()
            })
            .collect();
        let x = Tensor::from_vec(data, &[n, len]);
        let segs = segment_matrix(&x, 8);
        let protos = ClusterConfig::new(3, 8).fit(&segs, 1);
        let mut ps = ParamStore::new();
        let ext =
            DualBranchExtractor::new(&mut ps, "ext", &protos, 6, 4, Assignment::Hard, &mut rng);
        (ps, ext, x)
    }

    #[test]
    fn forward_produces_aligned_branches() {
        let (ps, ext, x) = fixture();
        let routing = ext.routing(&x);
        assert_eq!(routing.dims(), (4, 4, 3));
        assert_eq!(ext.assignments(&x).dims(), &[4, 4, 3]);
        let mut g = Graph::new();
        let pv = ps.register(&mut g);
        let (h_t, h_e) = ext.forward(&mut g, &pv, &x, &routing);
        assert_eq!(g.value(h_t).dims(), &[4, 4, 6]);
        assert_eq!(g.value(h_e).dims(), &[4, 4, 6]);
        assert!(g.value(h_t).all_finite());
        assert!(g.value(h_e).all_finite());
    }

    #[test]
    fn branches_differ() {
        // Temporal and entity branches have separate parameters and views,
        // so their features should not coincide.
        let (ps, ext, x) = fixture();
        let routing = ext.routing(&x);
        let mut g = Graph::new();
        let pv = ps.register(&mut g);
        let (h_t, h_e) = ext.forward(&mut g, &pv, &x, &routing);
        let diff = g.value(h_t).max_abs_diff(g.value(h_e));
        assert!(diff > 1e-3, "branches coincide (diff {diff})");
    }

    #[test]
    fn segment_view_is_pure_reshape() {
        let (_, ext, x) = fixture();
        let v = ext.segment_view(&x);
        assert_eq!(v.dims(), &[4, 4, 8]);
        // Row-major reshape: segment 1 of entity 0 is x[0, 8..16].
        let expect = &x.row(0)[8..16];
        let got: Vec<f32> = (0..8).map(|j| v.at3(0, 1, j)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_indivisible_lookback() {
        let (_, ext, _) = fixture();
        let bad = Tensor::zeros(&[4, 30]);
        let _ = ext.segment_view(&bad);
    }

    #[test]
    fn stacked_extractor_runs_and_costs_more() {
        let mut rng = StdRng::seed_from_u64(22);
        let x = Tensor::randn(&[4, 32], 1.0, &mut rng);
        let segs = segment_matrix(&x, 8);
        let protos = ClusterConfig::new(3, 8).fit(&segs, 1);

        let mut ps1 = ParamStore::new();
        let one = DualBranchExtractor::new_stacked(
            &mut ps1, "e1", &protos, 6, 4, 1, Assignment::Hard, &mut rng,
        );
        let mut ps3 = ParamStore::new();
        let three = DualBranchExtractor::new_stacked(
            &mut ps3, "e3", &protos, 6, 4, 3, Assignment::Hard, &mut rng,
        );
        assert_eq!(one.n_layers(), 1);
        assert_eq!(three.n_layers(), 3);
        assert!(three.cost(4, 4).flops > one.cost(4, 4).flops);
        assert!(ps3.scalar_count() > ps1.scalar_count());

        let routing = three.routing(&x);
        let mut g = Graph::new();
        let pv = ps3.register(&mut g);
        let (h_t, h_e) = three.forward(&mut g, &pv, &x, &routing);
        assert_eq!(g.value(h_t).dims(), &[4, 4, 6]);
        assert!(g.value(h_t).all_finite() && g.value(h_e).all_finite());
        // Params accounted analytically must match the store.
        assert_eq!(three.cost(4, 4).params, ps3.scalar_count());
    }

    #[test]
    fn full_gradient_flow() {
        let (mut ps, ext, x) = fixture();
        let routing = ext.routing(&x);
        let mut opt = focus_autograd::AdamW::new(0.01, 0.0);
        let mut g = Graph::new();
        let pv = ps.register(&mut g);
        let (h_t, h_e) = ext.forward(&mut g, &pv, &x, &routing);
        let s = g.add(h_t, h_e);
        let sq = g.mul(s, s);
        let loss = g.mean_all(sq);
        g.backward(loss);
        let norm = ps.grad_norm(&g, &pv);
        assert!(norm > 0.0 && norm.is_finite());
        ps.step(&mut opt, &g, &pv); // must not panic
    }
}
