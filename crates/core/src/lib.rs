//! # focus-core
//!
//! The FOCUS forecaster (ICDE 2025): *Forecaster with Offline Clustering
//! Using Segments*. This crate implements the paper's online phase and the
//! full model around it:
//!
//! * [`protoattn`] — Prototypes Attentive Modeling (§VI, Algorithm 2): hard
//!   prototype assignment plus `k × l` attention, the linear-complexity
//!   replacement for all-pairs self-attention;
//! * [`extractor`] — the dual-branch feature extractor (§VII-A,
//!   Algorithm 3): temporal ProtoAttn per entity, entity ProtoAttn per
//!   segment, both wrapped in `LayerNorm(· + residual)`;
//! * [`fusion`] — the Parallel Fusion Module (§VII-B, Algorithm 4): `m`
//!   readout queries, gated mixing of the two branches, projection to the
//!   horizon;
//! * [`model`] — the complete [`Focus`] model with training and evaluation
//!   loops, instance normalisation, offline-prototype wiring and the analytic
//!   [`focus_nn::CostReport`];
//! * [`ablation`] — the Table IV variants (FOCUS-Attn, FOCUS-LnrFusion,
//!   FOCUS-AllLnr);
//! * [`lowrank`] — an empirical check of Theorem 1's low-rank approximation
//!   bound;
//! * [`tune`] — the small grid-search utility the paper uses for `p` and `k`.
//!
//! ```no_run
//! use focus_core::{Focus, FocusConfig, Forecaster};
//! use focus_data::{Benchmark, MtsDataset, Split};
//!
//! let ds = MtsDataset::generate(Benchmark::Pems08.scaled(16, 4_000), 7);
//! let cfg = FocusConfig::for_dataset(ds.spec(), 96, 24);
//! let mut model = Focus::fit_offline(&ds, cfg, 1);
//! model.train(&ds, &Default::default());
//! let metrics = model.evaluate(&ds, Split::Test, 24);
//! println!("MSE {:.4}, MAE {:.4}", metrics.mse(), metrics.mae());
//! ```

#![forbid(unsafe_code)]

pub mod ablation;
pub mod extractor;
pub mod forecaster;
pub mod fusion;
pub mod lowrank;
pub mod model;
pub mod protoattn;
pub mod tune;

pub use ablation::{AblationVariant, FocusAblation};
pub use forecaster::{Forecaster, Loss, TrainOptions, TrainReport};
pub use model::{Focus, FocusConfig};
pub use protoattn::{Assignment, ProtoAttn, RoutingPlan};
