//! Ablation variants of FOCUS (paper §VIII-C, Table IV):
//!
//! * **FOCUS-Attn** — the ProtoAttn extractors are replaced with full
//!   self-attention layers (quadratic in `l` and `N`);
//! * **FOCUS-LnrFusion** — the Parallel Fusion Module is replaced by a gated
//!   linear layer over the flattened branch features;
//! * **FOCUS-AllLnr** — both the extractors *and* the fusion are linear.
//!
//! All variants share the [`Forecaster`] pipeline, so Table IV compares
//! architectures under identical training.

use crate::extractor::{DualBranchExtractor, SegmentEmbedding};
use crate::forecaster::Forecaster;
use crate::fusion::ParallelFusion;
use crate::model::FocusConfig;
use focus_autograd::{Graph, ParamStore, ParamVars, Var};
use focus_cluster::Prototypes;
use focus_nn::{CostReport, LayerNorm, Linear, SelfAttention};
use focus_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which Table IV variant to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AblationVariant {
    /// The full model (ProtoAttn extractors + Parallel Fusion).
    Full,
    /// Self-attention extractors + Parallel Fusion.
    Attn,
    /// ProtoAttn extractors + gated linear fusion.
    LnrFusion,
    /// Linear extractors + gated linear fusion.
    AllLnr,
}

impl AblationVariant {
    /// All four variants in the Table IV row order.
    pub const ALL: [AblationVariant; 4] = [
        AblationVariant::Full,
        AblationVariant::Attn,
        AblationVariant::LnrFusion,
        AblationVariant::AllLnr,
    ];

    /// The row label used in Table IV.
    pub fn label(&self) -> &'static str {
        match self {
            AblationVariant::Full => "FOCUS",
            AblationVariant::Attn => "FOCUS-Attn",
            AblationVariant::LnrFusion => "FOCUS-LnrFusion",
            AblationVariant::AllLnr => "FOCUS-AllLnr",
        }
    }
}

/// Feature-extraction stage of an ablation model.
enum Extract {
    Proto(DualBranchExtractor),
    Attn {
        embed: SegmentEmbedding,
        attn_t: SelfAttention,
        attn_e: SelfAttention,
        ln_t: LayerNorm,
        ln_e: LayerNorm,
    },
    Linear {
        embed: SegmentEmbedding,
        ln: LayerNorm,
    },
}

/// Fusion stage of an ablation model.
enum Fuse {
    Parallel(ParallelFusion),
    /// Gated linear unit over the concatenated flattened branches:
    /// `y = (z·W₁) ⊙ σ(z·W₂)`, `z = [flat(H_t); flat(H_e)]`.
    GatedLinear {
        w1: Linear,
        w2: Linear,
    },
}

/// One Table IV model.
pub struct FocusAblation {
    variant: AblationVariant,
    cfg: FocusConfig,
    ps: ParamStore,
    extract: Extract,
    fuse: Fuse,
}

impl FocusAblation {
    /// Builds a variant around an already-fitted prototype set (variants
    /// share prototypes so only the online architecture differs).
    pub fn with_prototypes(
        variant: AblationVariant,
        cfg: FocusConfig,
        prototypes: &Prototypes,
        seed: u64,
    ) -> Self {
        cfg.validate();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xab1a);
        let mut ps = ParamStore::new();
        let (p, d) = (cfg.segment_len, cfg.d);
        let l = cfg.n_segments();

        let extract = match variant {
            AblationVariant::Full | AblationVariant::LnrFusion => {
                Extract::Proto(DualBranchExtractor::new(
                    &mut ps,
                    "extractor",
                    prototypes,
                    d,
                    l,
                    cfg.assignment,
                    &mut rng,
                ))
            }
            AblationVariant::Attn => Extract::Attn {
                embed: SegmentEmbedding::new(&mut ps, "extractor.embed", p, d, l, &mut rng),
                attn_t: SelfAttention::new(&mut ps, "extractor.attn_t", d, &mut rng),
                attn_e: SelfAttention::new(&mut ps, "extractor.attn_e", d, &mut rng),
                ln_t: LayerNorm::new(&mut ps, "extractor.ln_t", d),
                ln_e: LayerNorm::new(&mut ps, "extractor.ln_e", d),
            },
            AblationVariant::AllLnr => Extract::Linear {
                embed: SegmentEmbedding::new(&mut ps, "extractor.embed", p, d, l, &mut rng),
                ln: LayerNorm::new(&mut ps, "extractor.ln", d),
            },
        };

        let fuse = match variant {
            AblationVariant::Full | AblationVariant::Attn => Fuse::Parallel(ParallelFusion::new(
                &mut ps,
                "fusion",
                cfg.readout,
                d,
                cfg.horizon,
                &mut rng,
            )),
            AblationVariant::LnrFusion | AblationVariant::AllLnr => Fuse::GatedLinear {
                w1: Linear::new(&mut ps, "fusion.w1", 2 * l * d, cfg.horizon, &mut rng),
                w2: Linear::new(&mut ps, "fusion.w2", 2 * l * d, cfg.horizon, &mut rng),
            },
        };

        FocusAblation {
            variant,
            cfg,
            ps,
            extract,
            fuse,
        }
    }

    /// The variant this model implements.
    pub fn variant(&self) -> AblationVariant {
        self.variant
    }

    /// Segment view `[N, l, p]` of a window `[N, L]`.
    fn segment_view(&self, x: &Tensor) -> Tensor {
        let (n, len) = (x.dims()[0], x.dims()[1]);
        let p = self.cfg.segment_len;
        assert_eq!(len % p, 0, "lookback {len} not divisible by segment length {p}");
        x.reshape(&[n, len / p, p])
    }

    /// Runs the extraction stage, returning `(H_t, H_e)`, each `[N, l, d]`.
    fn extract(&self, g: &mut Graph, pv: &ParamVars, x_norm: &Tensor) -> (Var, Var) {
        match &self.extract {
            Extract::Proto(ext) => {
                let routing = ext.routing(x_norm);
                ext.forward(g, pv, x_norm, &routing)
            }
            Extract::Attn {
                embed,
                attn_t,
                attn_e,
                ln_t,
                ln_e,
            } => {
                let p_t = g.constant(self.segment_view(x_norm)); // [N, l, p]
                let emb_t = embed.forward(g, pv, p_t); // [N, l, d]
                let at = attn_t.forward(g, pv, emb_t);
                let sum_t = g.add(at, emb_t);
                let h_t = ln_t.forward(g, pv, sum_t);

                let emb_e = g.swap_axes01(emb_t); // [l, N, d]
                let ae = attn_e.forward(g, pv, emb_e);
                let sum_e = g.add(ae, emb_e);
                let h_e_raw = ln_e.forward(g, pv, sum_e);
                let h_e = g.swap_axes01(h_e_raw);
                (h_t, h_e)
            }
            Extract::Linear { embed, ln } => {
                let p_t = g.constant(self.segment_view(x_norm));
                let emb = embed.forward(g, pv, p_t);
                let h = ln.forward(g, pv, emb);
                // Without mixing there is a single feature tensor; both
                // "branches" are that tensor.
                (h, h)
            }
        }
    }

    /// Runs the fusion stage on aligned `[N, l, d]` branches.
    fn fuse(&self, g: &mut Graph, pv: &ParamVars, h_t: Var, h_e: Var) -> Var {
        match &self.fuse {
            Fuse::Parallel(fusion) => fusion.forward(g, pv, h_t, h_e),
            Fuse::GatedLinear { w1, w2 } => {
                let dims = g.value(h_t).dims().to_vec();
                let (n, l, d) = (dims[0], dims[1], dims[2]);
                let flat_t = g.reshape(h_t, &[n, l * d]);
                let flat_e = g.reshape(h_e, &[n, l * d]);
                let z = g.concat_last(flat_t, flat_e); // [N, 2ld]
                let lin = w1.forward(g, pv, z);
                let gate_logits = w2.forward(g, pv, z);
                let gate = g.sigmoid(gate_logits);
                g.mul(lin, gate)
            }
        }
    }
}

impl Forecaster for FocusAblation {
    fn name(&self) -> &str {
        self.variant.label()
    }

    fn lookback(&self) -> usize {
        self.cfg.lookback
    }

    fn horizon(&self) -> usize {
        self.cfg.horizon
    }

    fn params(&self) -> &ParamStore {
        &self.ps
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.ps
    }

    fn forward_window(&self, g: &mut Graph, pv: &ParamVars, x_norm: &Tensor) -> Var {
        let (h_t, h_e) = self.extract(g, pv, x_norm);
        self.fuse(g, pv, h_t, h_e)
    }

    fn cost(&self, entities: usize) -> CostReport {
        let l = self.cfg.n_segments();
        let d = self.cfg.d;
        let ext = match &self.extract {
            Extract::Proto(ext) => ext.cost(entities, l),
            Extract::Attn {
                embed,
                attn_t,
                attn_e,
                ln_t,
                ln_e,
            } => {
                embed.cost(entities)
                    + attn_t.cost(entities, l)
                    + attn_e.cost(l, entities)
                    + ln_t.cost(entities * l)
                    + ln_e.cost(entities * l)
            }
            Extract::Linear { embed, ln } => embed.cost(entities) + ln.cost(entities * l),
        };
        let fuse = match &self.fuse {
            Fuse::Parallel(fusion) => fusion.cost(entities, l),
            Fuse::GatedLinear { w1, w2 } => {
                w1.cost(entities) + w2.cost(entities) + CostReport::pointwise(entities * self.cfg.horizon, 2)
            }
        };
        let _ = d;
        ext + fuse
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::TrainOptions;
    use focus_data::{Benchmark, MtsDataset, Split};

    fn fixture() -> (MtsDataset, FocusConfig, Prototypes) {
        let ds = MtsDataset::generate(Benchmark::Pems08.scaled(5, 1_200), 17);
        let mut cfg = FocusConfig::new(48, 12);
        cfg.segment_len = 8;
        cfg.n_prototypes = 4;
        cfg.d = 12;
        cfg.readout = 3;
        cfg.cluster_iters = 6;
        let protos = cfg.cluster(&ds.train_matrix(), 1);
        (ds, cfg, protos)
    }

    #[test]
    fn all_variants_forward_and_train() {
        let (ds, cfg, protos) = fixture();
        for variant in AblationVariant::ALL {
            let mut model = FocusAblation::with_prototypes(variant, cfg.clone(), &protos, 2);
            let w = ds.window_at(0, 48, 12);
            let pred = model.predict(&w.x);
            assert_eq!(pred.dims(), &[5, 12], "{variant:?}");
            assert!(pred.all_finite(), "{variant:?}");
            let report = model.train(
                &ds,
                &TrainOptions {
                    epochs: 2,
                    max_windows: 12,
                    ..Default::default()
                },
            );
            assert!(
                report.epoch_losses[1].is_finite(),
                "{variant:?} produced NaN loss"
            );
        }
    }

    #[test]
    fn attn_variant_costs_more_flops_than_full() {
        // Table IV: FOCUS-Attn has higher FLOPs and memory than FOCUS.
        let (_, cfg, protos) = fixture();
        let full = FocusAblation::with_prototypes(AblationVariant::Full, cfg.clone(), &protos, 3);
        let attn = FocusAblation::with_prototypes(AblationVariant::Attn, cfg.clone(), &protos, 3);
        // Evaluate at a larger entity count / sequence so the quadratic term
        // dominates, as in the paper's PEMS08 setting.
        let (cf, ca) = (full.cost(64), attn.cost(64));
        assert!(ca.flops > cf.flops, "attn {} <= full {}", ca.flops, cf.flops);
        assert!(ca.peak_mem_bytes > cf.peak_mem_bytes);
    }

    #[test]
    fn all_lnr_is_cheapest() {
        // Table IV: FOCUS-AllLnr has the lowest FLOPs and memory.
        let (_, cfg, protos) = fixture();
        let costs: Vec<(AblationVariant, CostReport)> = AblationVariant::ALL
            .iter()
            .map(|&v| {
                (
                    v,
                    FocusAblation::with_prototypes(v, cfg.clone(), &protos, 4).cost(64),
                )
            })
            .collect();
        let all_lnr = costs
            .iter()
            .find(|(v, _)| *v == AblationVariant::AllLnr)
            .expect("AllLnr is one of the swept variants")
            .1;
        for (v, c) in &costs {
            if *v != AblationVariant::AllLnr {
                assert!(
                    all_lnr.flops <= c.flops,
                    "AllLnr {} > {v:?} {}",
                    all_lnr.flops,
                    c.flops
                );
            }
        }
    }

    #[test]
    fn lnr_fusion_has_more_params_than_full() {
        // Table IV: FOCUS-LnrFusion's flattened gated-linear head inflates
        // the parameter count relative to FOCUS.
        let (_, cfg, protos) = fixture();
        let full = FocusAblation::with_prototypes(AblationVariant::Full, cfg.clone(), &protos, 5);
        let lnr = FocusAblation::with_prototypes(AblationVariant::LnrFusion, cfg.clone(), &protos, 5);
        assert!(lnr.cost(64).params > full.cost(64).params);
    }

    #[test]
    fn param_counts_match_stores() {
        let (_, cfg, protos) = fixture();
        for v in AblationVariant::ALL {
            let m = FocusAblation::with_prototypes(v, cfg.clone(), &protos, 6);
            assert_eq!(
                m.cost(5).params,
                m.params().scalar_count(),
                "{v:?} param accounting diverges"
            );
        }
    }

    #[test]
    fn variants_can_be_evaluated() {
        let (ds, cfg, protos) = fixture();
        let model = FocusAblation::with_prototypes(AblationVariant::AllLnr, cfg, &protos, 7);
        let m = model.evaluate(&ds, Split::Test, 48);
        assert!(m.mse().is_finite());
    }
}
