//! Grid search for the segment length `p` and prototype count `k`
//! (the paper obtains both "through the grid-search method", §VIII-A).

use crate::forecaster::{Forecaster, TrainOptions};
use crate::model::{Focus, FocusConfig};
use focus_data::{MtsDataset, Split};

/// One evaluated grid point.
#[derive(Clone, Debug)]
pub struct GridPoint {
    /// Segment length `p`.
    pub segment_len: usize,
    /// Prototype count `k`.
    pub n_prototypes: usize,
    /// Validation MSE after training.
    pub val_mse: f64,
    /// Validation MAE after training.
    pub val_mae: f64,
}

/// Result of a [`grid_search`].
#[derive(Clone, Debug)]
pub struct GridSearchReport {
    /// Every evaluated point, in evaluation order.
    pub points: Vec<GridPoint>,
    /// Index of the best point (lowest validation MSE).
    pub best: usize,
}

impl GridSearchReport {
    /// The winning grid point.
    pub fn best_point(&self) -> &GridPoint {
        &self.points[self.best]
    }
}

/// Trains one FOCUS per `(p, k)` pair and scores it on the validation split.
///
/// Pairs whose `p` does not divide the lookback are skipped. Returns the
/// evaluated points and the argmin.
///
/// # Panics
/// If no grid point is feasible.
pub fn grid_search(
    ds: &MtsDataset,
    base: &FocusConfig,
    segment_lens: &[usize],
    prototype_counts: &[usize],
    train: &TrainOptions,
    seed: u64,
) -> GridSearchReport {
    let mut points = Vec::new();
    for &p in segment_lens {
        if !base.lookback.is_multiple_of(p) {
            continue;
        }
        for &k in prototype_counts {
            let mut cfg = base.clone();
            cfg.segment_len = p;
            cfg.n_prototypes = k;
            let mut model = Focus::fit_offline(ds, cfg, seed);
            model.train(ds, train);
            let metrics = model.evaluate(ds, Split::Val, base.horizon.max(1));
            points.push(GridPoint {
                segment_len: p,
                n_prototypes: k,
                val_mse: metrics.mse(),
                val_mae: metrics.mae(),
            });
        }
    }
    assert!(
        !points.is_empty(),
        "no feasible grid point: none of {segment_lens:?} divides lookback {}",
        base.lookback
    );
    let best = points
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.val_mse.total_cmp(&b.1.val_mse))
        .map(|(i, _)| i)
        .expect("non-empty");
    GridSearchReport { points, best }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_data::Benchmark;

    #[test]
    fn grid_search_finds_a_feasible_best() {
        let ds = MtsDataset::generate(Benchmark::Etth1.scaled(4, 1_500), 3);
        let mut base = FocusConfig::new(48, 12);
        base.d = 8;
        base.readout = 2;
        base.cluster_iters = 4;
        let report = grid_search(
            &ds,
            &base,
            &[6, 7, 8], // 7 does not divide 48 and must be skipped
            &[2, 4],
            &TrainOptions {
                epochs: 1,
                max_windows: 8,
                ..Default::default()
            },
            1,
        );
        // 2 feasible segment lengths × 2 ks = 4 points.
        assert_eq!(report.points.len(), 4);
        assert!(report.points.iter().all(|pt| pt.segment_len != 7));
        let best = report.best_point();
        assert!(best.val_mse.is_finite());
        assert!(report
            .points
            .iter()
            .all(|pt| pt.val_mse >= best.val_mse));
    }

    #[test]
    #[should_panic(expected = "no feasible grid point")]
    fn infeasible_grid_panics() {
        let ds = MtsDataset::generate(Benchmark::Etth1.scaled(2, 800), 4);
        let base = FocusConfig::new(48, 12);
        let _ = grid_search(
            &ds,
            &base,
            &[5],
            &[2],
            &TrainOptions::default(),
            0,
        );
    }
}
