//! The [`Forecaster`] trait: the shared contract between FOCUS, its
//! ablations and every baseline model.
//!
//! A forecaster exposes a differentiable `forward_window` over an
//! instance-normalised lookback window; the provided methods supply the
//! common train / predict / evaluate machinery so all models in the
//! repository are compared under an identical pipeline (same normalisation,
//! same optimiser, same window sampling).

use focus_autograd::plan::PlanCache;
use focus_autograd::{AdamW, Graph, ParamStore, ParamVars, Var};
use focus_data::{Metrics, MtsDataset, Split};
use focus_nn::revin::{instance_denorm, instance_norm, InstanceStats};
use focus_nn::CostReport;
use focus_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training objective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Loss {
    /// Mean squared error (the convention of the paper's Table III models).
    Mse,
    /// Mean absolute error — more robust to outliers; used by some traffic
    /// baselines and exposed for the robustness studies.
    Mae,
}

/// Knobs of the online training loop.
#[derive(Clone, Debug)]
pub struct TrainOptions {
    /// Passes over the (subsampled) training windows.
    pub epochs: usize,
    /// AdamW learning rate.
    pub lr: f32,
    /// AdamW decoupled weight decay.
    pub weight_decay: f32,
    /// Stride between consecutive training windows.
    pub stride: usize,
    /// Cap on windows per epoch (they are shuffled first).
    pub max_windows: usize,
    /// Shuffle seed.
    pub seed: u64,
    /// Training objective.
    pub loss: Loss,
    /// Early stopping: stop after this many epochs without validation-MSE
    /// improvement and restore the best weights. `None` trains for exactly
    /// `epochs` epochs. `epochs` is the cap either way.
    pub patience: Option<usize>,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            epochs: 3,
            lr: 2e-3,
            weight_decay: 1e-4,
            stride: 8,
            max_windows: 96,
            seed: 0,
            loss: Loss::Mse,
            patience: None,
        }
    }
}

/// Summary of one training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Mean normalised-space MSE per epoch.
    pub epoch_losses: Vec<f64>,
    /// Windows actually used per epoch.
    pub windows_per_epoch: usize,
    /// Validation MSE per epoch, when early stopping was enabled.
    pub val_losses: Vec<f64>,
    /// Epoch whose weights were kept (best validation), when early stopping
    /// was enabled.
    pub best_epoch: Option<usize>,
}

/// Normalises a target `[N, L_f]` with the lookback window's instance
/// statistics, so training happens in the same space the network sees.
pub fn normalise_target(y: &Tensor, stats: &InstanceStats) -> Tensor {
    let mut out = y.clone();
    let l = y.dims()[1];
    for (e, (&mean, &std)) in stats.means.iter().zip(&stats.stds).enumerate() {
        let denom = std.max(1e-5);
        for v in &mut out.data_mut()[e * l..(e + 1) * l] {
            *v = (*v - mean) / denom;
        }
    }
    out
}

/// A trainable multivariate forecaster over fixed-size windows.
pub trait Forecaster {
    /// Display name used in experiment tables.
    fn name(&self) -> &str;

    /// Lookback window length `L`.
    fn lookback(&self) -> usize;

    /// Forecast horizon `L_f`.
    fn horizon(&self) -> usize;

    /// The model's trainable parameters.
    fn params(&self) -> &ParamStore;

    /// Mutable access to the parameters (for the optimiser step).
    fn params_mut(&mut self) -> &mut ParamStore;

    /// Differentiable forward pass over an instance-normalised window
    /// `[N, L]`, producing the normalised forecast `[N, L_f]`.
    fn forward_window(&self, g: &mut Graph, pv: &ParamVars, x_norm: &Tensor) -> Var;

    /// Per-window routing-index sources for plan compilation, in the order
    /// the model's `forward_window` consumes them.
    ///
    /// Models whose tape embeds one-hot routing indices must surface them
    /// here so the plan compiler can bind them as runtime arguments instead
    /// of baking them into the plan (where a per-window change would shut
    /// replay off). The default — no route sources — is correct for models
    /// without index-routed ops.
    fn plan_route_indices(&self, _x_norm: &Tensor) -> Vec<Vec<u32>> {
        Vec::new()
    }

    /// Analytic cost of one forward pass for `entities` series.
    fn cost(&self, entities: usize) -> CostReport;

    /// End-to-end prediction: instance-normalise, forward, de-normalise.
    fn predict(&self, x: &Tensor) -> Tensor {
        let (x_norm, stats) = instance_norm(x);
        let mut g = Graph::new();
        let pv = self.params().register(&mut g);
        let y = self.forward_window(&mut g, &pv, &x_norm);
        instance_denorm(g.value(y), &stats)
    }

    /// Trains on the dataset's training split with AdamW and an MSE loss.
    ///
    /// # Panics
    /// If the training split holds no full window.
    fn train(&mut self, ds: &MtsDataset, opts: &TrainOptions) -> TrainReport {
        let mut windows = ds.windows(Split::Train, self.lookback(), self.horizon(), opts.stride);
        assert!(
            !windows.is_empty(),
            "training split too short for lookback {} + horizon {}",
            self.lookback(),
            self.horizon()
        );
        let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x7ea1);
        windows.shuffle(&mut rng);
        windows.truncate(opts.max_windows);

        // Validation windows for early stopping (a small fixed set).
        let val_windows: Vec<_> = if opts.patience.is_some() {
            let all = ds.windows(Split::Val, self.lookback(), self.horizon(), self.horizon().max(1));
            let keep = all.len().div_ceil(16).max(1);
            all.into_iter().step_by(keep).take(16).collect()
        } else {
            Vec::new()
        };

        let mut opt = AdamW::new(opts.lr, opts.weight_decay);
        let mut epoch_losses = Vec::with_capacity(opts.epochs);
        let mut val_losses = Vec::new();
        let mut best: Option<(usize, f64, Vec<focus_tensor::Tensor>)> = None;
        let mut stale = 0usize;
        // One tape for the whole run: `reset` keeps the node/grad capacity,
        // so steady-state steps stop paying per-window tape reallocation.
        let mut g = Graph::new();
        // After a couple of interpreted warmup steps the cache holds a
        // verified flat plan; steady-state steps replay it with pre-resolved
        // buffer slots and never touch the tape. Shape changes reset it.
        let mut pcache = PlanCache::new();
        for epoch in 0..opts.epochs {
            let mut total = 0.0f64;
            for w in &windows {
                focus_trace::span!("train/step");
                let (x_norm, stats) = instance_norm(&w.x);
                let y_norm = normalise_target(&w.y, &stats);
                let plans_on = pcache.active();
                let routes: Vec<Vec<u32>> =
                    if plans_on { self.plan_route_indices(&x_norm) } else { Vec::new() };
                let route_refs: Vec<&[u32]> = routes.iter().map(|r| r.as_slice()).collect();
                if let Some(loss) = pcache.try_replay_train(
                    &[&x_norm, &y_norm],
                    &route_refs,
                    self.params_mut(),
                    &mut opt,
                ) {
                    total += loss as f64;
                    continue;
                }
                // The tape consumes the target tensor; keep a copy only
                // while the cache still wants to observe tapes.
                let y_obs = plans_on.then(|| y_norm.clone());
                g.reset();
                let pv = self.params().register(&mut g);
                let pred = self.forward_window(&mut g, &pv, &x_norm);
                let target = g.constant(y_norm);
                let loss = match opts.loss {
                    Loss::Mse => g.mse(pred, target),
                    Loss::Mae => g.mae(pred, target),
                };
                // focus-lint: allow(graph-interpret) -- warmup/fallback interpretation; steady-state steps replay the compiled plan above
                g.backward(loss);
                self.params_mut().step(&mut opt, &g, &pv);
                total += g.value(loss).item() as f64;
                if let Some(y_obs) = y_obs {
                    pcache.observe_train(&g, loss, &pv, self.params(), &[&x_norm, &y_obs], &route_refs);
                }
            }
            epoch_losses.push(total / windows.len() as f64);

            if let Some(patience) = opts.patience {
                if !val_windows.is_empty() {
                    let mut m = Metrics::new();
                    for w in &val_windows {
                        m.update(&self.predict(&w.x), &w.y);
                    }
                    let val = m.mse();
                    val_losses.push(val);
                    let improved = best.as_ref().map(|(_, b, _)| val < *b).unwrap_or(true);
                    if improved {
                        best = Some((epoch, val, self.params().snapshot()));
                        stale = 0;
                    } else {
                        stale += 1;
                        if stale >= patience {
                            break;
                        }
                    }
                }
            }
        }
        let best_epoch = if let Some((epoch, _, snapshot)) = best {
            self.params_mut().restore(&snapshot);
            Some(epoch)
        } else {
            None
        };
        if focus_trace::enabled() {
            println!("{} training phases:", self.name());
            print!("{}", focus_trace::report::phase_table(&focus_trace::snapshot_spans()));
        }
        TrainReport {
            epoch_losses,
            windows_per_epoch: windows.len(),
            val_losses,
            best_epoch,
        }
    }

    /// Evaluates on a split, accumulating MSE/MAE in the dataset's z-scored
    /// space (the paper's metric convention).
    ///
    /// # Panics
    /// If the split holds no full window.
    fn evaluate(&self, ds: &MtsDataset, split: Split, stride: usize) -> Metrics {
        let windows = ds.windows(split, self.lookback(), self.horizon(), stride);
        assert!(!windows.is_empty(), "no evaluation windows in {split:?}");
        let mut m = Metrics::new();
        // Inference-only plan: after two observed forwards the remaining
        // windows replay without graph construction. Bitwise-identical to
        // the interpreted forward, so metrics are unchanged.
        let mut pcache = PlanCache::new();
        let mut g = Graph::new();
        for w in &windows {
            let (x_norm, stats) = instance_norm(&w.x);
            let plans_on = pcache.active();
            let routes: Vec<Vec<u32>> =
                if plans_on { self.plan_route_indices(&x_norm) } else { Vec::new() };
            let route_refs: Vec<&[u32]> = routes.iter().map(|r| r.as_slice()).collect();
            let y_norm = match pcache.try_replay_forward(&[&x_norm], &route_refs, self.params()) {
                Some(out) => out,
                None => {
                    g.reset();
                    let pv = self.params().register(&mut g);
                    let y = self.forward_window(&mut g, &pv, &x_norm);
                    if plans_on {
                        pcache.observe_forward(&g, y, &pv, self.params(), &[&x_norm], &route_refs);
                    }
                    g.value(y).clone()
                }
            };
            m.update(&instance_denorm(&y_norm, &stats), &w.y);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalise_target_uses_window_stats() {
        let stats = InstanceStats {
            means: vec![10.0, -5.0],
            stds: vec![2.0, 0.5],
        };
        let y = Tensor::from_vec(vec![12.0, 14.0, -5.5, -4.5], &[2, 2]);
        let n = normalise_target(&y, &stats);
        assert_eq!(n.data(), &[1.0, 2.0, -1.0, 1.0]);
    }

    #[test]
    fn early_stopping_restores_best_weights() {
        use crate::model::{Focus, FocusConfig};
        use focus_data::{Benchmark, MtsDataset};
        let ds = MtsDataset::generate(Benchmark::Pems08.scaled(4, 1_600), 3);
        let mut cfg = FocusConfig::new(48, 12);
        cfg.segment_len = 8;
        cfg.n_prototypes = 4;
        cfg.d = 12;
        cfg.cluster_iters = 4;
        let mut model = Focus::fit_offline(&ds, cfg, 1);
        let r = model.train(
            &ds,
            &TrainOptions {
                epochs: 12,
                max_windows: 16,
                patience: Some(2),
                ..Default::default()
            },
        );
        let best = r.best_epoch.expect("early stopping must record a best epoch");
        assert!(!r.val_losses.is_empty());
        // The recorded best epoch must actually be the argmin.
        let argmin = r
            .val_losses
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("validation ran at least one epoch")
            .0;
        assert_eq!(best, argmin);
        // And the restored model must reproduce that validation score.
        let val_windows = ds.windows(Split::Val, 48, 12, 12);
        let mut m = Metrics::new();
        for w in val_windows
            .iter()
            .step_by(val_windows.len().div_ceil(16).max(1))
            .take(16)
        {
            m.update(&model.predict(&w.x), &w.y);
        }
        assert!((m.mse() - r.val_losses[best]).abs() < 1e-9);
    }

    #[test]
    fn mae_loss_trains_too() {
        use crate::model::{Focus, FocusConfig};
        use focus_data::{Benchmark, MtsDataset};
        let ds = MtsDataset::generate(Benchmark::Pems08.scaled(4, 1_200), 2);
        let mut cfg = FocusConfig::new(48, 12);
        cfg.segment_len = 8;
        cfg.n_prototypes = 4;
        cfg.d = 12;
        cfg.cluster_iters = 4;
        let mut model = Focus::fit_offline(&ds, cfg, 1);
        let r = model.train(
            &ds,
            &TrainOptions {
                epochs: 3,
                max_windows: 16,
                loss: Loss::Mae,
                ..Default::default()
            },
        );
        assert!(
            r.epoch_losses.last().expect("training ran at least one epoch") < &r.epoch_losses[0],
            "MAE training did not improve: {:?}",
            r.epoch_losses
        );
    }

    #[test]
    fn planned_training_is_bitwise_equal_to_interpreted() {
        use crate::model::{Focus, FocusConfig};
        use focus_data::{Benchmark, MtsDataset};
        let ds = MtsDataset::generate(Benchmark::Pems08.scaled(4, 1_200), 7);
        let mut cfg = FocusConfig::new(48, 12);
        cfg.segment_len = 8;
        cfg.n_prototypes = 4;
        cfg.d = 12;
        cfg.cluster_iters = 4;
        let opts = TrainOptions {
            epochs: 2,
            max_windows: 12,
            ..Default::default()
        };
        let train_with_plans = |on: bool| {
            focus_autograd::plan::set_enabled(on);
            let mut model = Focus::fit_offline(&ds, cfg.clone(), 9);
            let report = model.train(&ds, &opts);
            focus_autograd::plan::set_enabled(true);
            (model.params().snapshot(), report.epoch_losses)
        };
        let (params_i, losses_i) = train_with_plans(false);
        let (params_p, losses_p) = train_with_plans(true);
        for (i, (a, b)) in params_i.iter().zip(&params_p).enumerate() {
            let ba: Vec<u32> = a.data().iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = b.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(ba, bb, "param {i} diverged between interpreter and plan replay");
        }
        assert_eq!(losses_i, losses_p, "epoch losses must match bitwise");
        // And evaluation through the inference plan matches the
        // interpreted-forward metrics exactly.
        focus_autograd::plan::set_enabled(false);
        let model = {
            let mut m = Focus::fit_offline(&ds, cfg.clone(), 9);
            m.train(&ds, &opts);
            m
        };
        let base = model.evaluate(&ds, Split::Test, 24);
        focus_autograd::plan::set_enabled(true);
        let planned = model.evaluate(&ds, Split::Test, 24);
        assert_eq!(base.mse().to_bits(), planned.mse().to_bits());
        assert_eq!(base.mae().to_bits(), planned.mae().to_bits());
    }

    #[test]
    fn verifier_rejection_falls_back_to_interpreter_bitwise() {
        use crate::model::{Focus, FocusConfig};
        use focus_data::{Benchmark, MtsDataset};
        let ds = MtsDataset::generate(Benchmark::Pems08.scaled(4, 1_200), 11);
        let mut cfg = FocusConfig::new(48, 12);
        cfg.segment_len = 8;
        cfg.n_prototypes = 4;
        cfg.d = 12;
        cfg.cluster_iters = 4;
        let opts = TrainOptions {
            epochs: 2,
            max_windows: 12,
            ..Default::default()
        };
        // With the verifier failpoint armed, every compiled plan is rejected
        // and the cache goes sticky-Off: training must complete on the
        // interpreter, bitwise-equal to a run that never attempted plans.
        // (With the failpoint up, both closures interpret regardless of the
        // process-global enable toggle, so this holds under any test
        // interleaving.)
        focus_autograd::verify::set_fail_all(true);
        let train = |plans: bool| {
            focus_autograd::plan::set_enabled(plans);
            let mut model = Focus::fit_offline(&ds, cfg.clone(), 3);
            let report = model.train(&ds, &opts);
            focus_autograd::plan::set_enabled(true);
            (model.params().snapshot(), report.epoch_losses)
        };
        let (params_a, losses_a) = train(false);
        let (params_b, losses_b) = train(true);
        focus_autograd::verify::set_fail_all(false);
        assert_eq!(losses_a, losses_b, "rejected-plan training must match the interpreter");
        for (i, (a, b)) in params_a.iter().zip(&params_b).enumerate() {
            let ba: Vec<u32> = a.data().iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = b.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(ba, bb, "param {i} diverged under verifier rejection");
        }
        assert!(
            losses_a.last().expect("training ran") < &losses_a[0],
            "fallback training still learns: {losses_a:?}"
        );
    }

    #[test]
    fn normalise_target_guards_zero_std() {
        let stats = InstanceStats {
            means: vec![1.0],
            stds: vec![0.0],
        };
        let y = Tensor::from_vec(vec![2.0], &[1, 1]);
        let n = normalise_target(&y, &stats);
        assert!(n.all_finite());
    }
}
