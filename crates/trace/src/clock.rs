//! The workspace's **only** clock. Every other crate is forbidden from
//! reading wall time by the focus-lint determinism rule; this module holds
//! the single scoped exemption so all timing flows through one auditable
//! funnel. Traced timings are observability output only — they must never
//! feed back into model computation, assignments, or any value a test
//! asserts bitwise.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds elapsed since the first call in this process.
///
/// Monotone (backed by [`Instant`]); the epoch is pinned lazily so the
/// first reading is 0 and all spans share one origin.
pub fn now_ns() -> u64 {
    // This file is the lint's one sanctioned clock site (`is_clock_module`
    // in focus-lint's file classifier); spans and benches read time here
    // and nowhere else.
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_ns_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
