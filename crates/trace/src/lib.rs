//! `focus-trace`: scoped-span profiler, counter registry, and run-report
//! emitter for the FOCUS workspace. Zero dependencies.
//!
//! # Spans
//!
//! A span is a named region of work opened by [`span!`] (or [`span_guard`])
//! and closed when the returned RAII guard drops. Spans nest: the registry
//! aggregates them into a tree keyed by *static* span names, so every run of
//! the same code produces the same tree structure and the same call counts —
//! only the recorded nanoseconds vary. Each thread keeps its own open-span
//! stack; a worker thread entering a span starts its own path from the root,
//! so the tree shape never depends on which worker observed a region first
//! (the hot paths only open spans on the coordinating thread anyway).
//!
//! # Counters
//!
//! [`counter_add`] / [`counter_set`] maintain named `u64` counters (GEMM
//! calls by shape class, segments assigned, routing decisions, pool traffic,
//! FLOPs estimates). Like spans they are keyed by static names and ordered
//! deterministically (`BTreeMap`). The plan compiler's static verifier
//! reports through this registry too: the `plan/verify` span times each
//! verification pass, `plan/verify_dead` records how many dead instructions
//! the last verified plan carried (always 0 for compiler output, which runs
//! DCE first), and `plan/verify_rejects` counts plans the verifier refused —
//! a nonzero value means the plan cache tripped its sticky interpreter
//! fallback.
//!
//! # Disabled cost
//!
//! Tracing defaults to **off**. Every public entry point first performs a
//! single relaxed atomic load and returns an inert value when disabled, so
//! instrumented hot paths pay one predictable branch — the trainstep bench
//! asserts the total is under 2 % of a train step. Traced values are
//! observability output only and must never feed model computation.

#![forbid(unsafe_code)]

pub mod clock;
pub mod report;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Enabled-path invocations of `span_guard` + counter updates; the trainstep
/// bench multiplies this by a measured per-call cost to bound the overhead
/// the same call sites would add in disabled mode.
static API_CALLS: AtomicU64 = AtomicU64::new(0);

/// Turns tracing on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether tracing is currently enabled (one relaxed atomic load).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enabled-path API invocations so far (monotone; survives [`reset`]).
pub fn api_calls() -> u64 {
    API_CALLS.load(Ordering::Relaxed)
}

/// One node of the aggregated span tree, stored in a flat arena. Children
/// are found (or created) by `(parent, static name)`, so repeated entries of
/// the same region accumulate instead of multiplying nodes.
struct NodeData {
    name: &'static str,
    children: Vec<usize>,
    calls: u64,
    total_ns: u64,
}

struct Registry {
    /// Arena; index 0 is the synthetic root.
    nodes: Vec<NodeData>,
    counters: BTreeMap<&'static str, u64>,
}

impl Registry {
    const fn new() -> Registry {
        Registry { nodes: Vec::new(), counters: BTreeMap::new() }
    }

    fn ensure_root(&mut self) {
        if self.nodes.is_empty() {
            self.nodes.push(NodeData { name: "", children: Vec::new(), calls: 0, total_ns: 0 });
        }
    }

    /// Index of `parent`'s child named `name`, creating it on first entry.
    fn child(&mut self, parent: usize, name: &'static str) -> usize {
        self.ensure_root();
        if let Some(&c) = self.nodes[parent]
            .children
            .iter()
            .find(|&&c| self.nodes[c].name == name)
        {
            return c;
        }
        let id = self.nodes.len();
        self.nodes.push(NodeData { name, children: Vec::new(), calls: 0, total_ns: 0 });
        self.nodes[parent].children.push(id);
        id
    }
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry::new());

thread_local! {
    /// This thread's stack of open span node indices.
    static STACK: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

fn registry() -> std::sync::MutexGuard<'static, Registry> {
    REGISTRY.lock().expect("focus-trace registry mutex poisoned")
}

/// RAII guard returned by [`span_guard`]; records the elapsed time into the
/// span tree on drop. The inert (disabled) form does nothing.
pub struct SpanGuard {
    /// `Some((node index, start ns))` when tracing was enabled at entry.
    live: Option<(usize, u64)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((node, start_ns)) = self.live.take() else { return };
        let elapsed = clock::now_ns().saturating_sub(start_ns);
        {
            let mut reg = registry();
            reg.ensure_root();
            if let Some(n) = reg.nodes.get_mut(node) {
                n.calls += 1;
                n.total_ns += elapsed;
            }
        }
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Pop back to this node even if an inner guard leaked (e.g. was
            // forgotten); keeps the stack consistent per thread.
            if let Some(at) = s.iter().rposition(|&n| n == node) {
                s.truncate(at);
            }
        });
    }
}

/// Opens a span named `name` under the current thread's innermost open span
/// (or the root). Disabled mode costs one relaxed load and returns an inert
/// guard.
#[inline]
pub fn span_guard(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { live: None };
    }
    API_CALLS.fetch_add(1, Ordering::Relaxed);
    let parent = STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
    let node = registry().child(parent, name);
    STACK.with(|s| s.borrow_mut().push(node));
    SpanGuard { live: Some((node, clock::now_ns())) }
}

/// Opens a scoped span: `span!("cluster/assign")` binds an RAII guard that
/// closes the span at end of scope.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _focus_trace_span = $crate::span_guard($name);
    };
}

/// Adds `delta` to the counter `name` (no-op while disabled).
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    API_CALLS.fetch_add(1, Ordering::Relaxed);
    *registry().counters.entry(name).or_insert(0) += delta;
}

/// Sets the counter `name` to an absolute value (no-op while disabled).
/// For gauges snapshotted from elsewhere, e.g. pool resident bytes.
#[inline]
pub fn counter_set(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    API_CALLS.fetch_add(1, Ordering::Relaxed);
    registry().counters.insert(name, value);
}

/// Clears the span tree and all counters (`api_calls` is monotone and
/// deliberately survives, as does the enabled flag).
pub fn reset() {
    let mut reg = registry();
    reg.nodes.clear();
    reg.counters.clear();
    STACK.with(|s| s.borrow_mut().clear());
}

/// One aggregated span in a [`snapshot_spans`] tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Static name the span was opened with (e.g. `"model/forward"`).
    pub name: &'static str,
    /// Times this region was entered.
    pub calls: u64,
    /// Total nanoseconds across all entries.
    pub total_ns: u64,
    /// Nested spans, in first-entry order (deterministic).
    pub children: Vec<SpanNode>,
}

fn build_tree(reg: &Registry, node: usize) -> Vec<SpanNode> {
    reg.nodes[node]
        .children
        .iter()
        .map(|&c| SpanNode {
            name: reg.nodes[c].name,
            calls: reg.nodes[c].calls,
            total_ns: reg.nodes[c].total_ns,
            children: build_tree(reg, c),
        })
        .collect()
}

/// Snapshot of the aggregated span forest (children of the synthetic root).
pub fn snapshot_spans() -> Vec<SpanNode> {
    let mut reg = registry();
    reg.ensure_root();
    build_tree(&reg, 0)
}

/// Snapshot of every counter, in name order.
pub fn snapshot_counters() -> Vec<(&'static str, u64)> {
    registry().counters.iter().map(|(&k, &v)| (k, v)).collect()
}

/// Timing-free signature of a span forest: nesting + names + call counts.
/// Two runs that did the same work produce identical signatures regardless
/// of how long anything took — the trainstep bench asserts this across
/// thread counts.
pub fn structure_signature(spans: &[SpanNode]) -> String {
    fn rec(out: &mut String, nodes: &[SpanNode], depth: usize) {
        // Sort siblings by name so first-entry order (which a future
        // instrumentation site might legitimately change between modes)
        // never affects the signature.
        let mut sorted: Vec<&SpanNode> = nodes.iter().collect();
        sorted.sort_by_key(|n| n.name);
        for n in sorted {
            out.push_str(&"  ".repeat(depth));
            out.push_str(n.name);
            out.push('x');
            out.push_str(&n.calls.to_string());
            out.push('\n');
            rec(out, &n.children, depth + 1);
        }
    }
    let mut out = String::new();
    rec(&mut out, spans, 0);
    out
}

/// Flattens a span forest to `(name, calls, total_ns)` rows for quick
/// membership checks (distinct names across the whole tree).
pub fn flatten_spans(spans: &[SpanNode]) -> Vec<(&'static str, u64, u64)> {
    let mut rows = Vec::new();
    fn rec(rows: &mut Vec<(&'static str, u64, u64)>, nodes: &[SpanNode]) {
        for n in nodes {
            rows.push((n.name, n.calls, n.total_ns));
            rec(rows, &n.children);
        }
    }
    rec(&mut rows, spans);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as TestMutex;

    // The registry is process-global; tests that reset/enable must not
    // interleave.
    static TEST_LOCK: TestMutex<()> = TestMutex::new(());

    fn with_clean_trace<R>(f: impl FnOnce() -> R) -> R {
        let _g = TEST_LOCK.lock().expect("trace test lock");
        reset();
        set_enabled(true);
        let r = f();
        set_enabled(false);
        reset();
        r
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = TEST_LOCK.lock().expect("trace test lock");
        reset();
        set_enabled(false);
        {
            span!("quiet");
            counter_add("quiet/count", 3);
        }
        assert!(snapshot_spans().is_empty());
        assert!(snapshot_counters().is_empty());
    }

    #[test]
    fn spans_nest_and_aggregate() {
        with_clean_trace(|| {
            for _ in 0..3 {
                span!("outer");
                {
                    span!("inner");
                }
                {
                    span!("inner");
                }
            }
            let spans = snapshot_spans();
            assert_eq!(spans.len(), 1);
            assert_eq!(spans[0].name, "outer");
            assert_eq!(spans[0].calls, 3);
            assert_eq!(spans[0].children.len(), 1, "same name aggregates");
            assert_eq!(spans[0].children[0].name, "inner");
            assert_eq!(spans[0].children[0].calls, 6);
        });
    }

    #[test]
    fn sibling_spans_form_distinct_children() {
        with_clean_trace(|| {
            {
                span!("parent");
                {
                    span!("a");
                }
                {
                    span!("b");
                }
            }
            let spans = snapshot_spans();
            let names: Vec<_> = spans[0].children.iter().map(|c| c.name).collect();
            assert_eq!(names, vec!["a", "b"]);
        });
    }

    #[test]
    fn counters_accumulate_and_set() {
        with_clean_trace(|| {
            counter_add("gemm/nn_tiled", 2);
            counter_add("gemm/nn_tiled", 3);
            counter_set("pool/resident_bytes", 41);
            counter_set("pool/resident_bytes", 40);
            let c = snapshot_counters();
            assert_eq!(c, vec![("gemm/nn_tiled", 5), ("pool/resident_bytes", 40)]);
        });
    }

    #[test]
    fn structure_signature_ignores_timings() {
        with_clean_trace(|| {
            {
                span!("work");
                {
                    span!("sub");
                }
            }
            let a = structure_signature(&snapshot_spans());
            reset();
            {
                span!("work");
                {
                    span!("sub");
                }
            }
            let b = structure_signature(&snapshot_spans());
            assert_eq!(a, b);
            assert!(a.contains("workx1"));
            assert!(a.contains("subx1"));
        });
    }

    #[test]
    fn worker_thread_spans_start_from_root() {
        with_clean_trace(|| {
            {
                span!("main_side");
                std::thread::scope(|s| {
                    s.spawn(|| {
                        span!("worker_side");
                    });
                });
            }
            let spans = snapshot_spans();
            let top: Vec<_> = spans.iter().map(|n| n.name).collect();
            assert!(top.contains(&"main_side"));
            assert!(
                top.contains(&"worker_side"),
                "a worker's span must not nest under another thread's open span"
            );
        });
    }

    #[test]
    fn reset_clears_tree_and_counters() {
        with_clean_trace(|| {
            {
                span!("gone");
            }
            counter_add("gone/count", 1);
            reset();
            assert!(snapshot_spans().is_empty());
            assert!(snapshot_counters().is_empty());
        });
    }

    #[test]
    fn api_calls_is_monotone_and_counts_enabled_calls() {
        with_clean_trace(|| {
            let before = api_calls();
            {
                span!("counted");
            }
            counter_add("counted/c", 1);
            assert_eq!(api_calls(), before + 2);
        });
    }
}
