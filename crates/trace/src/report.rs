//! Run reports: one stable, schema-versioned JSON shape for every
//! `BENCH_*.json` the workspace emits, plus a human-readable per-phase
//! table for train loops and examples.
//!
//! # Schema (`focus-trace-report v1`)
//!
//! ```json
//! {
//!   "schema": "focus-trace-report v1",
//!   "name": "trainstep",
//!   "host_cores": 4,
//!   "settings": { "threads": "1", ... },
//!   "metrics": { "after_t1_ns": 123456.0, ... },
//!   "counters": { "cluster/segments_assigned": 640, ... },
//!   "spans": [ { "name": "...", "calls": 1, "total_ns": 2, "children": [...] } ]
//! }
//! ```
//!
//! `settings` are free-form strings describing the run configuration,
//! `metrics` are the benchmark's own numbers (timings, speedups), and
//! `counters`/`spans` are snapshots from the [`crate`] registry. The JSON is
//! hand-rolled (zero deps) with full string escaping; key order is the
//! insertion order of the vectors, so reports are byte-stable for a given
//! run history.

use crate::SpanNode;
use std::fmt::Write as _;

/// Schema tag written into every report; bump on breaking shape changes.
pub const SCHEMA: &str = "focus-trace-report v1";

/// A complete run report ready to serialise.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Short run name (`"trainstep"`, `"kernels"`, `"assign"`).
    pub name: String,
    /// Host core count the run observed.
    pub host_cores: usize,
    /// Free-form configuration pairs, serialised as a string map.
    pub settings: Vec<(String, String)>,
    /// Benchmark numbers, serialised as a number map.
    pub metrics: Vec<(String, f64)>,
    /// Counter snapshot (typically [`crate::snapshot_counters`]).
    pub counters: Vec<(String, u64)>,
    /// Span forest (typically [`crate::snapshot_spans`]).
    pub spans: Vec<SpanNode>,
}

impl RunReport {
    /// An empty report for `name`, stamped with the host core count.
    pub fn new(name: &str) -> RunReport {
        RunReport {
            name: name.to_string(),
            host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
            ..RunReport::default()
        }
    }

    /// Adds a configuration pair.
    pub fn setting(&mut self, key: &str, value: impl std::fmt::Display) -> &mut Self {
        self.settings.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a benchmark number.
    pub fn metric(&mut self, key: &str, value: f64) -> &mut Self {
        self.metrics.push((key.to_string(), value));
        self
    }

    /// Captures the current trace registry state into the report.
    pub fn capture_trace(&mut self) -> &mut Self {
        self.counters = crate::snapshot_counters()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        self.spans = crate::snapshot_spans();
        self
    }

    /// Serialises the report to the v1 JSON schema.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_str(SCHEMA));
        let _ = writeln!(out, "  \"name\": {},", json_str(&self.name));
        let _ = writeln!(out, "  \"host_cores\": {},", self.host_cores);
        out.push_str("  \"settings\": {");
        for (i, (k, v)) in self.settings.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    {}: {}", json_str(k), json_str(v));
        }
        out.push_str("\n  },\n  \"metrics\": {");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    {}: {}", json_str(k), json_num(*v));
        }
        out.push_str("\n  },\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    {}: {v}", json_str(k));
        }
        out.push_str("\n  },\n  \"spans\": ");
        spans_json(&mut out, &self.spans, 1);
        out.push_str("\n}\n");
        out
    }

    /// Writes the JSON report to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Renders the span tree as an aligned per-phase table: one row per
    /// span, indented by depth, with call counts, total milliseconds, and
    /// each span's share of its root's total.
    pub fn phase_table(&self) -> String {
        phase_table(&self.spans)
    }
}

/// JSON string literal with escaping for quotes, backslashes, and control
/// characters.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A finite JSON number; non-finite values (which JSON cannot express)
/// serialise as `null`.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn spans_json(out: &mut String, spans: &[SpanNode], depth: usize) {
    let pad = "  ".repeat(depth);
    if spans.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push_str("[\n");
    for (i, n) in spans.iter().enumerate() {
        let _ = write!(
            out,
            "{pad}  {{ \"name\": {}, \"calls\": {}, \"total_ns\": {}, \"children\": ",
            json_str(n.name),
            n.calls,
            n.total_ns
        );
        spans_json(out, &n.children, depth + 2);
        out.push_str(" }");
        if i + 1 < spans.len() {
            out.push(',');
        }
        out.push('\n');
    }
    let _ = write!(out, "{pad}]");
}

/// Standalone per-phase table for a span forest (see
/// [`RunReport::phase_table`]).
pub fn phase_table(spans: &[SpanNode]) -> String {
    struct Row {
        label: String,
        calls: u64,
        total_ns: u64,
        root_ns: u64,
    }
    fn rec(rows: &mut Vec<Row>, nodes: &[SpanNode], depth: usize, root_ns: u64) {
        for n in nodes {
            let root_ns = if depth == 0 { n.total_ns } else { root_ns };
            rows.push(Row {
                label: format!("{}{}", "  ".repeat(depth), n.name),
                calls: n.calls,
                total_ns: n.total_ns,
                root_ns,
            });
            rec(rows, &n.children, depth + 1, root_ns);
        }
    }
    let mut rows = Vec::new();
    rec(&mut rows, spans, 0, 0);
    if rows.is_empty() {
        return String::from("(no spans recorded)\n");
    }
    let label_w = rows.iter().map(|r| r.label.len()).max().unwrap_or(5).max(5);
    let mut out = String::new();
    let _ = writeln!(out, "{:<label_w$}  {:>8}  {:>12}  {:>6}", "phase", "calls", "total ms", "share");
    for r in &rows {
        let share = if r.root_ns > 0 {
            format!("{:>5.1}%", 100.0 * r.total_ns as f64 / r.root_ns as f64)
        } else {
            "    --".to_string()
        };
        let _ = writeln!(
            out,
            "{:<label_w$}  {:>8}  {:>12.3}  {}",
            r.label,
            r.calls,
            r.total_ns as f64 / 1e6,
            share
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spans() -> Vec<SpanNode> {
        vec![SpanNode {
            name: "train/step",
            calls: 4,
            total_ns: 8_000_000,
            children: vec![
                SpanNode {
                    name: "model/forward",
                    calls: 4,
                    total_ns: 5_000_000,
                    children: Vec::new(),
                },
                SpanNode {
                    name: "autograd/backward",
                    calls: 4,
                    total_ns: 2_000_000,
                    children: Vec::new(),
                },
            ],
        }]
    }

    #[test]
    fn report_json_has_schema_and_sections() {
        let mut r = RunReport::new("unit");
        r.setting("threads", 2).metric("best_ns", 123.0);
        r.counters.push(("gemm/nn_tiled".to_string(), 7));
        r.spans = sample_spans();
        let j = r.to_json();
        assert!(j.contains("\"schema\": \"focus-trace-report v1\""));
        assert!(j.contains("\"name\": \"unit\""));
        assert!(j.contains("\"threads\": \"2\""));
        assert!(j.contains("\"best_ns\": 123"));
        assert!(j.contains("\"gemm/nn_tiled\": 7"));
        assert!(j.contains("\"name\": \"train/step\", \"calls\": 4"));
        assert!(j.contains("\"children\": []"));
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn non_finite_metrics_serialise_as_null() {
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
        assert_eq!(json_num(2.5), "2.5");
    }

    #[test]
    fn empty_sections_are_valid_json_shapes() {
        let r = RunReport::new("empty");
        let j = r.to_json();
        assert!(j.contains("\"settings\": {\n  }"));
        assert!(j.contains("\"spans\": []"));
    }

    #[test]
    fn phase_table_shows_shares_of_root() {
        let t = phase_table(&sample_spans());
        assert!(t.contains("train/step"));
        assert!(t.contains("  model/forward"));
        assert!(t.contains("62.5%"), "5ms of 8ms root:\n{t}");
        assert!(t.contains("100.0%"));
    }

    #[test]
    fn empty_phase_table_is_explicit() {
        assert_eq!(phase_table(&[]), "(no spans recorded)\n");
    }
}
