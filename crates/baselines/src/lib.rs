//! # focus-baselines
//!
//! The seven comparison models of the FOCUS paper (§VIII-A, "Baselines"),
//! re-implemented on the same substrate (`focus-tensor` / `focus-autograd` /
//! `focus-nn`) and trained through the same [`focus_core::Forecaster`]
//! pipeline, so Table III and Fig. 6 compare *architectures*, not tooling.
//!
//! Each model is a `-lite` variant: reduced depth/width, but preserving the
//! architectural signature that determines its accuracy/efficiency profile
//! (see DESIGN.md §4):
//!
//! | Model | Signature kept |
//! |-------|----------------|
//! | [`DLinear`] | trend/seasonal decomposition + per-component linear maps |
//! | [`PatchTst`] | channel-independent patching + self-attention over patches (`O(l²)`) |
//! | [`Crossformer`] | two-stage attention across time *and* entities (`O(l²)+O(N²)`) |
//! | [`Mtgnn`] | learned adaptive adjacency + graph convolution + temporal mixing |
//! | [`GraphWavenet`] | adaptive adjacency + gated temporal unit |
//! | [`TimesNet`] | period-based 2-D reshaping + per-axis MLPs |
//! | [`LightCts`] | lightweight single entity-attention + plain temporal linear |
//!
//! The [`zoo`] module instantiates all of them (plus FOCUS) with one call —
//! the entry point the Table III harness uses.

#![forbid(unsafe_code)]

pub mod common;
pub mod crossformer;
pub mod dlinear;
pub mod gwnet;
pub mod lightcts;
pub mod mtgnn;
pub mod patchtst;
pub mod timesnet;
pub mod zoo;

pub use crossformer::Crossformer;
pub use dlinear::DLinear;
pub use gwnet::GraphWavenet;
pub use lightcts::LightCts;
pub use mtgnn::Mtgnn;
pub use patchtst::PatchTst;
pub use timesnet::TimesNet;
pub use zoo::{BaselineConfig, ModelKind};
