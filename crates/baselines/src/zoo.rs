//! The model zoo: build any of the paper's eight models (FOCUS + 7
//! baselines) behind one [`focus_core::Forecaster`] interface — the entry
//! point the Table III / Fig. 6 harness iterates over.

use crate::{Crossformer, DLinear, GraphWavenet, LightCts, Mtgnn, PatchTst, TimesNet};
use focus_core::{Focus, FocusConfig, Forecaster};
use focus_data::{MtsDataset, Split};

/// Which model to instantiate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// FOCUS (this paper).
    Focus,
    /// PatchTST (Nie et al., ICLR 2023).
    PatchTst,
    /// Crossformer (Zhang & Yan, ICLR 2023).
    Crossformer,
    /// MTGNN (Wu et al., KDD 2020).
    Mtgnn,
    /// Graph WaveNet (Wu et al., IJCAI 2019).
    GraphWavenet,
    /// TimesNet (Wu et al., ICLR 2023).
    TimesNet,
    /// LightCTS (Lai et al., SIGMOD 2023).
    LightCts,
    /// DLinear (Zeng et al., AAAI 2023).
    DLinear,
}

impl ModelKind {
    /// All eight models in the paper's Table III column order.
    pub const ALL: [ModelKind; 8] = [
        ModelKind::Focus,
        ModelKind::PatchTst,
        ModelKind::Crossformer,
        ModelKind::Mtgnn,
        ModelKind::GraphWavenet,
        ModelKind::TimesNet,
        ModelKind::LightCts,
        ModelKind::DLinear,
    ];

    /// The display name used in the experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            ModelKind::Focus => "FOCUS",
            ModelKind::PatchTst => "PatchTST",
            ModelKind::Crossformer => "Crossformer",
            ModelKind::Mtgnn => "MTGNN",
            ModelKind::GraphWavenet => "GraphWavenet",
            ModelKind::TimesNet => "TimesNet",
            ModelKind::LightCts => "LightCTS",
            ModelKind::DLinear => "DLinear",
        }
    }
}

/// Shared sizing for a zoo build, so every model sees the same window and a
/// comparable capacity budget.
#[derive(Clone, Debug)]
pub struct BaselineConfig {
    /// Lookback window `L`.
    pub lookback: usize,
    /// Forecast horizon `L_f`.
    pub horizon: usize,
    /// Patch/segment length shared by the patching models.
    pub patch: usize,
    /// Embedding width.
    pub d: usize,
    /// Prototype count for FOCUS.
    pub n_prototypes: usize,
    /// Build seed.
    pub seed: u64,
}

impl BaselineConfig {
    /// A small CPU-friendly default.
    pub fn new(lookback: usize, horizon: usize) -> Self {
        BaselineConfig {
            lookback,
            horizon,
            patch: 8,
            d: 24,
            n_prototypes: 12,
            seed: 0,
        }
    }

    /// The [`FocusConfig`] equivalent of this sizing.
    pub fn focus_config(&self) -> FocusConfig {
        let mut cfg = FocusConfig::new(self.lookback, self.horizon);
        cfg.segment_len = self.patch;
        cfg.n_prototypes = self.n_prototypes;
        cfg.d = self.d;
        cfg
    }

    /// Instantiates `kind` for `ds` (the dataset supplies the entity count
    /// for the graph models, the offline clustering input for FOCUS and the
    /// calibration window for TimesNet).
    pub fn build(&self, kind: ModelKind, ds: &MtsDataset) -> Box<dyn Forecaster> {
        let n = ds.spec().entities;
        match kind {
            ModelKind::Focus => Box::new(Focus::fit_offline(ds, self.focus_config(), self.seed)),
            ModelKind::PatchTst => Box::new(PatchTst::new(
                self.lookback,
                self.horizon,
                self.patch,
                self.d,
                self.seed,
            )),
            ModelKind::Crossformer => Box::new(Crossformer::new(
                self.lookback,
                self.horizon,
                self.patch,
                self.d,
                self.seed,
            )),
            ModelKind::Mtgnn => Box::new(Mtgnn::new(
                self.lookback,
                self.horizon,
                n,
                self.patch,
                self.d,
                self.seed,
            )),
            ModelKind::GraphWavenet => Box::new(GraphWavenet::new(
                self.lookback,
                self.horizon,
                n,
                self.patch,
                self.d,
                self.seed,
            )),
            ModelKind::TimesNet => {
                let r = ds.range(Split::Train);
                let calib_len = r.len().min(self.lookback * 4);
                let calib = ds.window_at(r.start, calib_len.saturating_sub(1).max(1), 1).x;
                Box::new(TimesNet::with_estimated_period(
                    &calib,
                    self.lookback,
                    self.horizon,
                    self.d,
                    self.seed,
                ))
            }
            ModelKind::LightCts => Box::new(LightCts::new(
                self.lookback,
                self.horizon,
                self.patch,
                self.d,
                self.seed,
            )),
            ModelKind::DLinear => Box::new(DLinear::new(self.lookback, self.horizon, self.seed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_data::Benchmark;

    #[test]
    fn every_model_builds_and_predicts() {
        let ds = MtsDataset::generate(Benchmark::Pems08.scaled(4, 1_200), 15);
        let cfg = BaselineConfig {
            d: 8,
            n_prototypes: 4,
            ..BaselineConfig::new(48, 12)
        };
        let w = ds.window_at(0, 48, 12);
        for kind in ModelKind::ALL {
            let model = cfg.build(kind, &ds);
            assert_eq!(model.name(), kind.label());
            let pred = model.predict(&w.x);
            assert_eq!(pred.dims(), &[4, 12], "{kind:?}");
            assert!(pred.all_finite(), "{kind:?}");
            let cost = model.cost(4);
            assert!(cost.flops > 0 && cost.params > 0, "{kind:?}");
        }
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = ModelKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 8);
    }
}
