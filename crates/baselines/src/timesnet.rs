//! TimesNet-lite (Wu et al., ICLR 2023): temporal 2-D variation modelling —
//! fold the 1-D series into a `[periods, period]` grid at its dominant
//! period and model intra-/inter-period variation with 2-D blocks. The lite
//! variant estimates one dominant period by autocorrelation and applies one
//! MLP along each grid axis.

use crate::common::dominant_period;
use focus_autograd::{Graph, ParamStore, ParamVars, Var};
use focus_core::Forecaster;
use focus_nn::mlp::{Activation, Mlp};
use focus_nn::{CostReport, Linear};
use focus_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The TimesNet-lite forecaster.
///
/// The period is fixed at construction (estimated from a calibration window
/// or supplied directly) so the parameter shapes are static; the original
/// re-detects periods per batch, but its inception blocks are likewise built
/// for a fixed top-k of period lengths.
pub struct TimesNet {
    lookback: usize,
    horizon: usize,
    period: usize,
    ps: ParamStore,
    intra: Mlp,
    inter: Mlp,
    proj: Linear,
    head: Linear,
}

impl TimesNet {
    /// Builds a TimesNet-lite with an explicit period.
    ///
    /// # Panics
    /// If `period` does not divide `lookback`.
    pub fn new(lookback: usize, horizon: usize, period: usize, d: usize, seed: u64) -> Self {
        assert_eq!(
            lookback % period,
            0,
            "period {period} must divide lookback {lookback}"
        );
        let cycles = lookback / period;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7155);
        let mut ps = ParamStore::new();
        TimesNet {
            lookback,
            horizon,
            period,
            intra: Mlp::new(&mut ps, "intra", period, d, period, Activation::Gelu, &mut rng),
            inter: Mlp::new(&mut ps, "inter", cycles, d, cycles, Activation::Gelu, &mut rng),
            proj: Linear::new(&mut ps, "proj", lookback, d, &mut rng),
            head: Linear::new(&mut ps, "head", d, horizon, &mut rng),
            ps,
        }
    }

    /// Builds a TimesNet-lite whose period is estimated from a calibration
    /// window by lag autocorrelation (the paper's FFT top-1 equivalent).
    pub fn with_estimated_period(
        calibration: &Tensor,
        lookback: usize,
        horizon: usize,
        d: usize,
        seed: u64,
    ) -> Self {
        let period = dominant_period(calibration, 4.min(lookback / 2).max(2));
        let period = if lookback.is_multiple_of(period) { period } else { lookback / 2 };
        Self::new(lookback, horizon, period.max(1), d, seed)
    }

    /// The period used for the 2-D reshape.
    pub fn period(&self) -> usize {
        self.period
    }
}

impl Forecaster for TimesNet {
    fn name(&self) -> &str {
        "TimesNet"
    }

    fn lookback(&self) -> usize {
        self.lookback
    }

    fn horizon(&self) -> usize {
        self.horizon
    }

    fn params(&self) -> &ParamStore {
        &self.ps
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.ps
    }

    fn forward_window(&self, g: &mut Graph, pv: &ParamVars, x_norm: &Tensor) -> Var {
        let n = x_norm.dims()[0];
        let cycles = self.lookback / self.period;
        let x = g.constant(x_norm.clone());

        // Intra-period variation: rows of the [cycles, period] grid.
        let grid = g.reshape(x, &[n, cycles, self.period]);
        let intra = self.intra.forward(g, pv, grid); // [N, cycles, period]

        // Inter-period variation: columns of the grid.
        let cols = g.transpose_last2(intra); // [N, period, cycles]
        let inter = self.inter.forward(g, pv, cols); // [N, period, cycles]
        let back = g.transpose_last2(inter); // [N, cycles, period]

        // Residual in the original layout, then project and forecast.
        let flat_in = g.reshape(back, &[n, self.lookback]);
        let res = g.add(flat_in, x);
        let feat = self.proj.forward(g, pv, res); // [N, d]
        let act = g.gelu(feat);
        self.head.forward(g, pv, act)
    }

    fn cost(&self, entities: usize) -> CostReport {
        let cycles = self.lookback / self.period;
        self.intra.cost(entities * cycles)
            + self.inter.cost(entities * self.period)
            + self.proj.cost(entities)
            + self.head.cost(entities)
            + CostReport::pointwise(entities * self.lookback, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_core::TrainOptions;
    use focus_data::{Benchmark, MtsDataset, Split};

    #[test]
    fn forward_shape() {
        let model = TimesNet::new(48, 12, 12, 16, 0);
        let x = Tensor::from_vec((0..96).map(|v| (v as f32 * 0.2).sin()).collect(), &[2, 48]);
        let y = model.predict(&x);
        assert_eq!(y.dims(), &[2, 12]);
        assert!(y.all_finite());
    }

    #[test]
    fn estimated_period_divides_lookback() {
        let x = Tensor::from_vec(
            (0..192)
                .map(|t| (2.0 * std::f32::consts::PI * (t % 12) as f32 / 12.0).sin())
                .collect(),
            &[1, 192],
        );
        let model = TimesNet::with_estimated_period(&x, 48, 12, 8, 1);
        assert_eq!(48 % model.period(), 0);
        assert_eq!(model.period(), 12);
    }

    #[test]
    fn trains() {
        let ds = MtsDataset::generate(Benchmark::Weather.scaled(4, 1_200), 6);
        let mut model = TimesNet::new(48, 12, 12, 12, 2);
        let r = model.train(
            &ds,
            &TrainOptions {
                epochs: 3,
                max_windows: 24,
                ..Default::default()
            },
        );
        assert!(r.epoch_losses.last().expect("training ran at least one epoch") < &r.epoch_losses[0]);
        assert!(model.evaluate(&ds, Split::Test, 48).mse().is_finite());
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_bad_period() {
        let _ = TimesNet::new(48, 12, 7, 8, 3);
    }
}
