//! Shared helpers for the baseline models.

use focus_tensor::Tensor;

/// Reshapes a window `[N, L]` into non-overlapping patches `[N, l, p]`.
///
/// # Panics
/// If `p` does not divide `L`.
pub fn patch_view(x: &Tensor, p: usize) -> Tensor {
    assert_eq!(x.rank(), 2, "window must be [N, L]");
    let (n, len) = (x.dims()[0], x.dims()[1]);
    assert_eq!(len % p, 0, "window length {len} not divisible by patch {p}");
    x.reshape(&[n, len / p, p])
}

/// Series decomposition used by DLinear (and Autoformer before it): a
/// centred moving average extracts the trend; the remainder is the seasonal
/// component. Edges are padded by replication.
///
/// Returns `(trend, seasonal)`, both `[N, L]`.
pub fn decompose(x: &Tensor, kernel: usize) -> (Tensor, Tensor) {
    assert_eq!(x.rank(), 2, "window must be [N, L]");
    assert!(kernel >= 1, "kernel must be >= 1");
    let (n, len) = (x.dims()[0], x.dims()[1]);
    let half = kernel / 2;
    let mut trend = Tensor::zeros(&[n, len]);
    for e in 0..n {
        let row = x.row(e);
        for t in 0..len {
            let mut acc = 0.0f64;
            for ofs in 0..kernel {
                // Replicated-edge padding.
                let idx = (t + ofs).saturating_sub(half).min(len - 1);
                acc += row[idx] as f64;
            }
            trend.data_mut()[e * len + t] = (acc / kernel as f64) as f32;
        }
    }
    let seasonal = x.sub(&trend);
    (trend, seasonal)
}

/// The dominant period of a window, estimated by lag autocorrelation over
/// the per-entity mean series (TimesNet uses an FFT top-k; a direct
/// autocorrelation scan over the candidate lags is equivalent for one
/// period and dependency-free).
///
/// Only lags that divide `L` are considered so the period-based reshape is
/// exact. Falls back to the largest candidate if the series is degenerate.
pub fn dominant_period(x: &Tensor, min_period: usize) -> usize {
    assert_eq!(x.rank(), 2, "window must be [N, L]");
    let (n, len) = (x.dims()[0], x.dims()[1]);
    // Mean series across entities.
    let mut mean = vec![0.0f32; len];
    for e in 0..n {
        for (m, &v) in mean.iter_mut().zip(x.row(e)) {
            *m += v / n as f32;
        }
    }
    let candidates: Vec<usize> = (min_period..=len / 2).filter(|p| len % p == 0).collect();
    if candidates.is_empty() {
        return len;
    }
    let mut best = candidates[0];
    let mut best_r = f32::NEG_INFINITY;
    for &p in &candidates {
        let r = focus_tensor::stats::pearson(&mean[..len - p], &mean[p..]);
        if r > best_r {
            best_r = r;
            best = p;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patch_view_is_pure_reshape() {
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[2, 6]);
        let p = patch_view(&x, 3);
        assert_eq!(p.dims(), &[2, 2, 3]);
        assert_eq!(p.at3(1, 1, 0), 9.0);
    }

    #[test]
    fn decompose_sums_back_to_input() {
        let x = Tensor::from_vec(
            (0..40).map(|t| (t as f32 * 0.5).sin() + 0.1 * t as f32).collect(),
            &[1, 40],
        );
        let (trend, seasonal) = decompose(&x, 9);
        let sum = trend.add(&seasonal);
        assert!(sum.max_abs_diff(&x) < 1e-5);
    }

    #[test]
    fn trend_is_smoother_than_input() {
        let x = Tensor::from_vec(
            (0..64)
                .map(|t| 0.05 * t as f32 + if t % 2 == 0 { 1.0 } else { -1.0 })
                .collect(),
            &[1, 64],
        );
        let (trend, _) = decompose(&x, 11);
        let roughness = |row: &[f32]| -> f32 {
            row.windows(2).map(|w| (w[1] - w[0]).abs()).sum()
        };
        assert!(roughness(trend.row(0)) < 0.3 * roughness(x.row(0)));
    }

    #[test]
    fn dominant_period_finds_planted_cycle() {
        let period = 12;
        let x = Tensor::from_vec(
            (0..96)
                .map(|t| (2.0 * std::f32::consts::PI * (t % period) as f32 / period as f32).sin())
                .collect(),
            &[1, 96],
        );
        assert_eq!(dominant_period(&x, 4), period);
    }

    #[test]
    fn dominant_period_only_returns_divisors() {
        let x = Tensor::from_vec((0..60).map(|t| (t as f32 * 0.37).sin()).collect(), &[1, 60]);
        let p = dominant_period(&x, 4);
        assert_eq!(60 % p, 0, "period {p} must divide 60");
    }
}
