//! Graph WaveNet-lite (Wu et al., IJCAI 2019): adaptive adjacency plus
//! *gated* temporal units (`tanh ⊙ sigmoid`), WaveNet's gating applied to
//! traffic graphs. The lite variant keeps the self-adaptive adjacency and
//! the gated temporal activation with two graph hops.

use crate::common::patch_view;
use focus_autograd::{Graph, ParamId, ParamStore, ParamVars, Var};
use focus_core::Forecaster;
use focus_nn::{init, CostReport, Linear};
use focus_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The Graph WaveNet-lite forecaster.
pub struct GraphWavenet {
    lookback: usize,
    horizon: usize,
    entities: usize,
    patch: usize,
    d: usize,
    node_rank: usize,
    ps: ParamStore,
    e1: ParamId,
    e2: ParamId,
    embed: Linear,
    gate_filter: Linear,
    gate_gate: Linear,
    hop1: Linear,
    hop2: Linear,
    head: Linear,
}

impl GraphWavenet {
    /// Builds a Graph WaveNet-lite for a fixed entity count.
    ///
    /// # Panics
    /// If `patch` does not divide `lookback`.
    pub fn new(
        lookback: usize,
        horizon: usize,
        entities: usize,
        patch: usize,
        d: usize,
        seed: u64,
    ) -> Self {
        assert_eq!(lookback % patch, 0, "patch {patch} must divide lookback {lookback}");
        let l = lookback / patch;
        let node_rank = 8.min(entities.max(2));
        let mut rng = StdRng::seed_from_u64(seed ^ 0x67e7);
        let mut ps = ParamStore::new();
        let e1 = ps.add("e1", init::normal(&[entities, node_rank], 0.5, &mut rng));
        let e2 = ps.add("e2", init::normal(&[entities, node_rank], 0.5, &mut rng));
        GraphWavenet {
            lookback,
            horizon,
            entities,
            patch,
            d,
            node_rank,
            e1,
            e2,
            embed: Linear::new(&mut ps, "embed", patch, d, &mut rng),
            gate_filter: Linear::new(&mut ps, "gate_filter", l * d, d, &mut rng),
            gate_gate: Linear::new(&mut ps, "gate_gate", l * d, d, &mut rng),
            hop1: Linear::new(&mut ps, "hop1", d, d, &mut rng),
            hop2: Linear::new(&mut ps, "hop2", d, d, &mut rng),
            head: Linear::new(&mut ps, "head", d, horizon, &mut rng),
            ps,
        }
    }
}

impl Forecaster for GraphWavenet {
    fn name(&self) -> &str {
        "GraphWavenet"
    }

    fn lookback(&self) -> usize {
        self.lookback
    }

    fn horizon(&self) -> usize {
        self.horizon
    }

    fn params(&self) -> &ParamStore {
        &self.ps
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.ps
    }

    fn forward_window(&self, g: &mut Graph, pv: &ParamVars, x_norm: &Tensor) -> Var {
        let n = x_norm.dims()[0];
        assert_eq!(
            n, self.entities,
            "GraphWavenet adjacency built for {} entities, window has {n}",
            self.entities
        );
        let l = self.lookback / self.patch;
        let patches = g.constant(patch_view(x_norm, self.patch));
        let emb = self.embed.forward(g, pv, patches); // [N, l, d]
        let flat = g.reshape(emb, &[n, l * self.d]);

        // WaveNet gated temporal unit: tanh(filter) ⊙ σ(gate).
        let f = self.gate_filter.forward(g, pv, flat);
        let f_act = g.tanh(f);
        let s = self.gate_gate.forward(g, pv, flat);
        let s_act = g.sigmoid(s);
        let gated = g.mul(f_act, s_act); // [N, d]

        // Self-adaptive adjacency and two diffusion hops.
        let e1 = pv.var(self.e1);
        let e2 = pv.var(self.e2);
        let e2t = g.transpose(e2);
        let logits = g.matmul(e1, e2t);
        let pos = g.relu(logits);
        let adj = g.softmax_last(pos); // [N, N]

        let m1 = g.matmul(adj, gated);
        let h1 = self.hop1.forward(g, pv, m1);
        let h1_act = g.relu(h1);
        let m2 = g.matmul(adj, h1_act);
        let h2 = self.hop2.forward(g, pv, m2);

        let fused = g.add(gated, h2); // skip connection
        self.head.forward(g, pv, fused)
    }

    fn cost(&self, entities: usize) -> CostReport {
        let l = self.lookback / self.patch;
        let adjacency = CostReport::matmul(entities, self.node_rank, entities)
            + CostReport::softmax(entities, entities);
        let hops = CostReport::matmul(entities, entities, self.d).repeat_shared(2);
        self.embed.cost(entities * l)
            + self.gate_filter.cost(entities)
            + self.gate_gate.cost(entities)
            + CostReport::pointwise(entities * self.d, 3)
            + adjacency
            + hops
            + self.hop1.cost(entities)
            + self.hop2.cost(entities)
            + self.head.cost(entities)
            + CostReport {
                flops: 0,
                params: 2 * (self.entities * self.node_rank) as u64,
                peak_mem_bytes: (entities * entities * 4) as u64,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_core::TrainOptions;
    use focus_data::{Benchmark, MtsDataset, Split};

    #[test]
    fn forward_shape() {
        let model = GraphWavenet::new(32, 8, 4, 8, 10, 0);
        let x = Tensor::from_vec((0..128).map(|v| (v as f32 * 0.3).sin()).collect(), &[4, 32]);
        let y = model.predict(&x);
        assert_eq!(y.dims(), &[4, 8]);
        assert!(y.all_finite());
    }

    #[test]
    fn trains() {
        let ds = MtsDataset::generate(Benchmark::Pems04.scaled(4, 1_000), 4);
        let mut model = GraphWavenet::new(48, 12, 4, 8, 8, 1);
        let r = model.train(
            &ds,
            &TrainOptions {
                epochs: 3,
                max_windows: 16,
                ..Default::default()
            },
        );
        assert!(r.epoch_losses.iter().all(|l| l.is_finite()));
        let m = model.evaluate(&ds, Split::Test, 48);
        assert!(m.mse().is_finite());
    }

    #[test]
    fn adjacency_memory_grows_quadratically() {
        let small = GraphWavenet::new(32, 8, 4, 8, 8, 2).cost(4);
        let large = GraphWavenet::new(32, 8, 64, 8, 8, 2).cost(64);
        // 16× more entities: a purely linear model would grow memory 16×;
        // the N×N adjacency pushes it beyond that.
        let ratio = large.peak_mem_bytes as f64 / small.peak_mem_bytes as f64;
        assert!(ratio > 16.0, "ratio {ratio} not superlinear");
    }
}
