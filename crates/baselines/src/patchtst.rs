//! PatchTST-lite (Nie et al., ICLR 2023): channel-independent patching with
//! full self-attention over patches — the strongest transformer baseline in
//! the paper and the architecture FOCUS's linear ProtoAttn is measured
//! against.

use crate::common::patch_view;
use focus_autograd::{Graph, ParamStore, ParamVars, Var};
use focus_core::Forecaster;
use focus_nn::mlp::{Activation, Mlp};
use focus_nn::{CostReport, LayerNorm, Linear, SelfAttention};
use focus_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The PatchTST-lite forecaster.
///
/// Pipeline per entity (channel-independent, batched over entities):
/// patch → linear embedding → self-attention block (+LN, residual) →
/// feed-forward (+LN, residual) → flatten → linear head.
pub struct PatchTst {
    lookback: usize,
    horizon: usize,
    patch: usize,
    d: usize,
    ps: ParamStore,
    embed: Linear,
    attn: SelfAttention,
    ln1: LayerNorm,
    ffn: Mlp,
    ln2: LayerNorm,
    head: Linear,
}

impl PatchTst {
    /// Builds a PatchTST-lite with the given patch length and width.
    ///
    /// # Panics
    /// If `patch` does not divide `lookback`.
    pub fn new(lookback: usize, horizon: usize, patch: usize, d: usize, seed: u64) -> Self {
        assert_eq!(lookback % patch, 0, "patch {patch} must divide lookback {lookback}");
        let l = lookback / patch;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9a7c);
        let mut ps = ParamStore::new();
        let embed = Linear::new(&mut ps, "embed", patch, d, &mut rng);
        let attn = SelfAttention::new(&mut ps, "attn", d, &mut rng);
        let ln1 = LayerNorm::new(&mut ps, "ln1", d);
        let ffn = Mlp::new(&mut ps, "ffn", d, 2 * d, d, Activation::Gelu, &mut rng);
        let ln2 = LayerNorm::new(&mut ps, "ln2", d);
        let head = Linear::new(&mut ps, "head", l * d, horizon, &mut rng);
        PatchTst {
            lookback,
            horizon,
            patch,
            d,
            ps,
            embed,
            attn,
            ln1,
            ffn,
            ln2,
            head,
        }
    }

    /// Number of patches per entity.
    pub fn n_patches(&self) -> usize {
        self.lookback / self.patch
    }
}

impl Forecaster for PatchTst {
    fn name(&self) -> &str {
        "PatchTST"
    }

    fn lookback(&self) -> usize {
        self.lookback
    }

    fn horizon(&self) -> usize {
        self.horizon
    }

    fn params(&self) -> &ParamStore {
        &self.ps
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.ps
    }

    fn forward_window(&self, g: &mut Graph, pv: &ParamVars, x_norm: &Tensor) -> Var {
        let n = x_norm.dims()[0];
        let l = self.n_patches();
        let patches = g.constant(patch_view(x_norm, self.patch)); // [N, l, p]
        let emb = self.embed.forward(g, pv, patches); // [N, l, d]
        let att = self.attn.forward(g, pv, emb);
        let sum1 = g.add(att, emb);
        let h1 = self.ln1.forward(g, pv, sum1);
        let ff = self.ffn.forward(g, pv, h1);
        let sum2 = g.add(ff, h1);
        let h2 = self.ln2.forward(g, pv, sum2);
        let flat = g.reshape(h2, &[n, l * self.d]);
        self.head.forward(g, pv, flat)
    }

    fn cost(&self, entities: usize) -> CostReport {
        let l = self.n_patches();
        self.embed.cost(entities * l)
            + self.attn.cost(entities, l)
            + self.ln1.cost(entities * l)
            + self.ffn.cost(entities * l)
            + self.ln2.cost(entities * l)
            + self.head.cost(entities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_core::TrainOptions;
    use focus_data::{Benchmark, MtsDataset, Split};

    #[test]
    fn forward_shape() {
        let model = PatchTst::new(48, 12, 8, 16, 0);
        let x = Tensor::from_vec((0..144).map(|v| (v as f32 * 0.1).cos()).collect(), &[3, 48]);
        let y = model.predict(&x);
        assert_eq!(y.dims(), &[3, 12]);
        assert!(y.all_finite());
    }

    #[test]
    fn training_improves_accuracy() {
        let ds = MtsDataset::generate(Benchmark::Pems08.scaled(4, 1_200), 9);
        let mut model = PatchTst::new(48, 12, 8, 12, 1);
        let before = model.evaluate(&ds, Split::Test, 48);
        model.train(
            &ds,
            &TrainOptions {
                epochs: 4,
                max_windows: 32,
                ..Default::default()
            },
        );
        let after = model.evaluate(&ds, Split::Test, 48);
        assert!(after.mse() < before.mse());
    }

    #[test]
    fn flops_grow_quadratically_with_lookback() {
        // The attention term is O(l²): quadrupling is expected when the
        // patch count doubles and l ≫ d is approached.
        let short = PatchTst::new(128, 24, 8, 8, 2);
        let long = PatchTst::new(256, 24, 8, 8, 2);
        let ratio = long.cost(1).flops as f64 / short.cost(1).flops as f64;
        assert!(ratio > 2.0, "ratio {ratio} not superlinear");
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_bad_patch() {
        let _ = PatchTst::new(50, 12, 8, 16, 3);
    }
}
