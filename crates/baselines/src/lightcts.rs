//! LightCTS-lite (Lai et al., SIGMOD 2023): a deliberately *light* stack for
//! correlated time series — plain temporal convolutions/linears plus a
//! single lightweight attention over entities (their "L-TFormer"), chosen to
//! minimise FLOPs and parameters. The lite variant keeps the
//! light-temporal + single-entity-attention shape.

use crate::common::patch_view;
use focus_autograd::{Graph, ParamStore, ParamVars, Var};
use focus_core::Forecaster;
use focus_nn::{CostReport, LayerNorm, Linear, SelfAttention};
use focus_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The LightCTS-lite forecaster.
pub struct LightCts {
    lookback: usize,
    horizon: usize,
    patch: usize,
    d: usize,
    ps: ParamStore,
    embed: Linear,
    temporal: Linear,
    entity_attn: SelfAttention,
    ln: LayerNorm,
    head: Linear,
}

impl LightCts {
    /// Builds a LightCTS-lite.
    ///
    /// # Panics
    /// If `patch` does not divide `lookback`.
    pub fn new(lookback: usize, horizon: usize, patch: usize, d: usize, seed: u64) -> Self {
        assert_eq!(lookback % patch, 0, "patch {patch} must divide lookback {lookback}");
        let l = lookback / patch;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x11c7);
        let mut ps = ParamStore::new();
        LightCts {
            lookback,
            horizon,
            patch,
            d,
            embed: Linear::new(&mut ps, "embed", patch, d, &mut rng),
            temporal: Linear::new(&mut ps, "temporal", l * d, d, &mut rng),
            entity_attn: SelfAttention::new(&mut ps, "entity_attn", d, &mut rng),
            ln: LayerNorm::new(&mut ps, "ln", d),
            head: Linear::new(&mut ps, "head", d, horizon, &mut rng),
            ps,
        }
    }
}

impl Forecaster for LightCts {
    fn name(&self) -> &str {
        "LightCTS"
    }

    fn lookback(&self) -> usize {
        self.lookback
    }

    fn horizon(&self) -> usize {
        self.horizon
    }

    fn params(&self) -> &ParamStore {
        &self.ps
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.ps
    }

    fn forward_window(&self, g: &mut Graph, pv: &ParamVars, x_norm: &Tensor) -> Var {
        let n = x_norm.dims()[0];
        let l = self.lookback / self.patch;
        let patches = g.constant(patch_view(x_norm, self.patch));
        let emb = self.embed.forward(g, pv, patches); // [N, l, d]
        let flat = g.reshape(emb, &[n, l * self.d]);
        let temporal = self.temporal.forward(g, pv, flat); // [N, d]
        let act = g.relu(temporal);

        // One lightweight attention over entities (batch of one "sequence"
        // whose tokens are the N entities).
        let tokens = g.reshape(act, &[1, n, self.d]);
        let mixed = self.entity_attn.forward(g, pv, tokens);
        let res = g.add(mixed, tokens);
        let normed = self.ln.forward(g, pv, res);
        let back = g.reshape(normed, &[n, self.d]);
        self.head.forward(g, pv, back)
    }

    fn cost(&self, entities: usize) -> CostReport {
        let l = self.lookback / self.patch;
        self.embed.cost(entities * l)
            + self.temporal.cost(entities)
            + CostReport::pointwise(entities * self.d, 1)
            + self.entity_attn.cost(1, entities)
            + self.ln.cost(entities)
            + self.head.cost(entities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_core::TrainOptions;
    use focus_data::{Benchmark, MtsDataset, Split};

    #[test]
    fn forward_shape() {
        let model = LightCts::new(32, 8, 8, 12, 0);
        let x = Tensor::from_vec((0..96).map(|v| (v as f32 * 0.25).cos()).collect(), &[3, 32]);
        let y = model.predict(&x);
        assert_eq!(y.dims(), &[3, 8]);
        assert!(y.all_finite());
    }

    #[test]
    fn trains() {
        let ds = MtsDataset::generate(Benchmark::Electricity.scaled(4, 1_000), 2);
        let mut model = LightCts::new(48, 12, 8, 10, 1);
        let r = model.train(
            &ds,
            &TrainOptions {
                epochs: 3,
                max_windows: 16,
                ..Default::default()
            },
        );
        assert!(r.epoch_losses.last().expect("training ran at least one epoch") < &r.epoch_losses[0]);
        assert!(model.evaluate(&ds, Split::Test, 48).mse().is_finite());
    }

    #[test]
    fn is_lighter_than_patchtst_in_flops() {
        // The design goal of LightCTS: fewer FLOPs than the transformer
        // baselines at the same window.
        let light = LightCts::new(128, 24, 8, 16, 2);
        let heavy = crate::patchtst::PatchTst::new(128, 24, 8, 16, 2);
        assert!(light.cost(32).flops < heavy.cost(32).flops);
    }
}
