//! DLinear (Zeng et al., AAAI 2023): "Are Transformers Effective for Time
//! Series Forecasting?" — moving-average decomposition plus one linear map
//! per component, shared across channels.

use crate::common::decompose;
use focus_autograd::{Graph, ParamStore, ParamVars, Var};
use focus_core::Forecaster;
use focus_nn::{CostReport, Linear};
use focus_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The DLinear forecaster: `ŷ = W_t·trend + W_s·seasonal`.
pub struct DLinear {
    lookback: usize,
    horizon: usize,
    kernel: usize,
    ps: ParamStore,
    trend: Linear,
    seasonal: Linear,
}

impl DLinear {
    /// Builds a DLinear with the classic moving-average kernel of 25
    /// (clamped to the lookback).
    pub fn new(lookback: usize, horizon: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xd11e);
        let mut ps = ParamStore::new();
        let trend = Linear::new(&mut ps, "trend", lookback, horizon, &mut rng);
        let seasonal = Linear::new(&mut ps, "seasonal", lookback, horizon, &mut rng);
        DLinear {
            lookback,
            horizon,
            kernel: 25.min(lookback.max(1)),
            ps,
            trend,
            seasonal,
        }
    }
}

impl Forecaster for DLinear {
    fn name(&self) -> &str {
        "DLinear"
    }

    fn lookback(&self) -> usize {
        self.lookback
    }

    fn horizon(&self) -> usize {
        self.horizon
    }

    fn params(&self) -> &ParamStore {
        &self.ps
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.ps
    }

    fn forward_window(&self, g: &mut Graph, pv: &ParamVars, x_norm: &Tensor) -> Var {
        let (trend, seasonal) = decompose(x_norm, self.kernel);
        let tv = g.constant(trend);
        let sv = g.constant(seasonal);
        let yt = self.trend.forward(g, pv, tv); // [N, horizon]
        let ys = self.seasonal.forward(g, pv, sv);
        g.add(yt, ys)
    }

    fn cost(&self, entities: usize) -> CostReport {
        // Decomposition is a moving average: kernel FLOPs per input point.
        let decomp = CostReport::pointwise(entities * self.lookback, self.kernel as u64);
        decomp + self.trend.cost(entities) + self.seasonal.cost(entities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_core::TrainOptions;
    use focus_data::{Benchmark, MtsDataset, Split};

    #[test]
    fn forward_shape() {
        let model = DLinear::new(48, 12, 0);
        let x = Tensor::from_vec((0..96).map(|v| (v as f32 * 0.2).sin()).collect(), &[2, 48]);
        let y = model.predict(&x);
        assert_eq!(y.dims(), &[2, 12]);
        assert!(y.all_finite());
    }

    #[test]
    fn learns_a_linear_continuation() {
        // DLinear should fit smooth periodic data well.
        let ds = MtsDataset::generate(Benchmark::Etth1.scaled(4, 1_200), 5);
        let mut model = DLinear::new(48, 12, 1);
        let before = model.evaluate(&ds, Split::Test, 48);
        model.train(
            &ds,
            &TrainOptions {
                epochs: 6,
                max_windows: 64,
                ..Default::default()
            },
        );
        let after = model.evaluate(&ds, Split::Test, 48);
        assert!(after.mse() < before.mse(), "{} vs {}", after.mse(), before.mse());
    }

    #[test]
    fn cost_is_quadratic_in_window_product_only() {
        let m = DLinear::new(96, 24, 2);
        let c = m.cost(10);
        // Two L×L_f weight matrices dominate the parameter count.
        assert_eq!(c.params, 2 * (96 * 24 + 24));
        assert!(c.flops > 0);
    }
}
