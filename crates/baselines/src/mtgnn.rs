//! MTGNN-lite (Wu et al., KDD 2020): "Connecting the Dots" — a spatial-
//! temporal GNN whose signature is a *learned adaptive adjacency matrix*
//! (from node embeddings) combined with temporal convolution. The lite
//! variant keeps adaptive-adjacency graph convolution over entities plus a
//! temporal mixing MLP.

use crate::common::patch_view;
use focus_autograd::{Graph, ParamId, ParamStore, ParamVars, Var};
use focus_core::Forecaster;
use focus_nn::mlp::{Activation, Mlp};
use focus_nn::{init, CostReport, Linear};
use focus_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The MTGNN-lite forecaster.
pub struct Mtgnn {
    lookback: usize,
    horizon: usize,
    entities: usize,
    patch: usize,
    d: usize,
    node_rank: usize,
    ps: ParamStore,
    /// Source/target node embeddings for the adaptive adjacency
    /// `A = softmax(relu(E₁·E₂ᵀ))`.
    e1: ParamId,
    e2: ParamId,
    embed: Linear,
    temporal: Mlp,
    graph_proj: Linear,
    head: Linear,
}

impl Mtgnn {
    /// Builds an MTGNN-lite for a fixed entity count (the adjacency is per
    /// node, as in the original).
    ///
    /// # Panics
    /// If `patch` does not divide `lookback`.
    pub fn new(
        lookback: usize,
        horizon: usize,
        entities: usize,
        patch: usize,
        d: usize,
        seed: u64,
    ) -> Self {
        assert_eq!(lookback % patch, 0, "patch {patch} must divide lookback {lookback}");
        let l = lookback / patch;
        let node_rank = 8.min(entities.max(2));
        let mut rng = StdRng::seed_from_u64(seed ^ 0x317c);
        let mut ps = ParamStore::new();
        let e1 = ps.add("e1", init::normal(&[entities, node_rank], 0.5, &mut rng));
        let e2 = ps.add("e2", init::normal(&[entities, node_rank], 0.5, &mut rng));
        Mtgnn {
            lookback,
            horizon,
            entities,
            patch,
            d,
            node_rank,
            e1,
            e2,
            embed: Linear::new(&mut ps, "embed", patch, d, &mut rng),
            temporal: Mlp::new(&mut ps, "temporal", l * d, d, d, Activation::Relu, &mut rng),
            graph_proj: Linear::new(&mut ps, "graph_proj", d, d, &mut rng),
            head: Linear::new(&mut ps, "head", 2 * d, horizon, &mut rng),
            ps,
        }
    }

    /// Builds the adaptive adjacency inside the graph:
    /// `A = softmax(relu(E₁·E₂ᵀ))`, rows normalised.
    fn adjacency(&self, g: &mut Graph, pv: &ParamVars) -> Var {
        let e1 = pv.var(self.e1);
        let e2 = pv.var(self.e2);
        let e2t = g.transpose(e2);
        let logits = g.matmul(e1, e2t); // [N, N]
        let pos = g.relu(logits);
        g.softmax_last(pos)
    }
}

impl Forecaster for Mtgnn {
    fn name(&self) -> &str {
        "MTGNN"
    }

    fn lookback(&self) -> usize {
        self.lookback
    }

    fn horizon(&self) -> usize {
        self.horizon
    }

    fn params(&self) -> &ParamStore {
        &self.ps
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.ps
    }

    fn forward_window(&self, g: &mut Graph, pv: &ParamVars, x_norm: &Tensor) -> Var {
        let n = x_norm.dims()[0];
        assert_eq!(
            n, self.entities,
            "MTGNN adjacency built for {} entities, window has {n}",
            self.entities
        );
        let l = self.lookback / self.patch;
        let patches = g.constant(patch_view(x_norm, self.patch)); // [N, l, p]
        let emb = self.embed.forward(g, pv, patches); // [N, l, d]
        let flat = g.reshape(emb, &[n, l * self.d]);
        let temporal = self.temporal.forward(g, pv, flat); // [N, d]

        // One graph-convolution hop over the learned adjacency.
        let adj = self.adjacency(g, pv); // [N, N]
        let mixed = g.matmul(adj, temporal); // [N, d]
        let mixed_proj = self.graph_proj.forward(g, pv, mixed);
        let both = g.concat_last(temporal, mixed_proj); // [N, 2d]
        self.head.forward(g, pv, both)
    }

    fn cost(&self, entities: usize) -> CostReport {
        let l = self.lookback / self.patch;
        let adjacency = CostReport::matmul(entities, self.node_rank, entities)
            + CostReport::softmax(entities, entities);
        let hop = CostReport::matmul(entities, entities, self.d);
        self.embed.cost(entities * l)
            + self.temporal.cost(entities)
            + adjacency
            + hop
            + self.graph_proj.cost(entities)
            + self.head.cost(entities)
            + CostReport {
                flops: 0,
                params: 2 * (self.entities * self.node_rank) as u64,
                peak_mem_bytes: (entities * entities * 4) as u64,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_core::TrainOptions;
    use focus_data::{Benchmark, MtsDataset, Split};

    #[test]
    fn forward_shape() {
        let model = Mtgnn::new(32, 8, 5, 8, 12, 0);
        let x = Tensor::from_vec((0..160).map(|v| (v as f32 * 0.2).sin()).collect(), &[5, 32]);
        let y = model.predict(&x);
        assert_eq!(y.dims(), &[5, 8]);
        assert!(y.all_finite());
    }

    #[test]
    #[should_panic(expected = "adjacency built for")]
    fn rejects_wrong_entity_count() {
        let model = Mtgnn::new(32, 8, 5, 8, 12, 1);
        let x = Tensor::zeros(&[3, 32]);
        let _ = model.predict(&x);
    }

    #[test]
    fn trains_and_adjacency_adapts() {
        let ds = MtsDataset::generate(Benchmark::Pems08.scaled(4, 1_000), 8);
        let mut model = Mtgnn::new(48, 12, 4, 8, 8, 2);
        let e1_before = model.ps.get(model.e1).clone();
        model.train(
            &ds,
            &TrainOptions {
                epochs: 3,
                max_windows: 16,
                ..Default::default()
            },
        );
        let e1_after = model.ps.get(model.e1);
        assert!(
            e1_before.max_abs_diff(e1_after) > 1e-5,
            "node embeddings did not move"
        );
        let m = model.evaluate(&ds, Split::Test, 48);
        assert!(m.mse().is_finite());
    }

    #[test]
    fn adjacency_rows_are_stochastic() {
        let model = Mtgnn::new(32, 8, 6, 8, 8, 3);
        let mut g = Graph::new();
        let pv = model.ps.register(&mut g);
        let adj = model.adjacency(&mut g, &pv);
        let a = g.value(adj);
        assert_eq!(a.dims(), &[6, 6]);
        for i in 0..6 {
            let sum: f32 = a.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(a.row(i).iter().all(|&v| v >= 0.0));
        }
    }
}
