//! Crossformer-lite (Zhang & Yan, ICLR 2023): attention along *both* the
//! temporal and the entity dimension. The lite variant keeps the
//! two-stage-attention signature — `O(l²)` across segments plus `O(N²)`
//! across entities — which is exactly the cost profile Fig. 6 contrasts
//! with FOCUS.

use crate::common::patch_view;
use focus_autograd::{Graph, ParamStore, ParamVars, Var};
use focus_core::Forecaster;
use focus_nn::{CostReport, LayerNorm, Linear, SelfAttention};
use focus_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The Crossformer-lite forecaster.
pub struct Crossformer {
    lookback: usize,
    horizon: usize,
    patch: usize,
    d: usize,
    ps: ParamStore,
    embed: Linear,
    time_attn: SelfAttention,
    ln_t: LayerNorm,
    dim_attn: SelfAttention,
    ln_d: LayerNorm,
    head: Linear,
}

impl Crossformer {
    /// Builds a Crossformer-lite.
    ///
    /// # Panics
    /// If `patch` does not divide `lookback`.
    pub fn new(lookback: usize, horizon: usize, patch: usize, d: usize, seed: u64) -> Self {
        assert_eq!(lookback % patch, 0, "patch {patch} must divide lookback {lookback}");
        let l = lookback / patch;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc405);
        let mut ps = ParamStore::new();
        Crossformer {
            lookback,
            horizon,
            patch,
            d,
            embed: Linear::new(&mut ps, "embed", patch, d, &mut rng),
            time_attn: SelfAttention::new(&mut ps, "time_attn", d, &mut rng),
            ln_t: LayerNorm::new(&mut ps, "ln_t", d),
            dim_attn: SelfAttention::new(&mut ps, "dim_attn", d, &mut rng),
            ln_d: LayerNorm::new(&mut ps, "ln_d", d),
            head: Linear::new(&mut ps, "head", l * d, horizon, &mut rng),
            ps,
        }
    }

    fn n_patches(&self) -> usize {
        self.lookback / self.patch
    }
}

impl Forecaster for Crossformer {
    fn name(&self) -> &str {
        "Crossformer"
    }

    fn lookback(&self) -> usize {
        self.lookback
    }

    fn horizon(&self) -> usize {
        self.horizon
    }

    fn params(&self) -> &ParamStore {
        &self.ps
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.ps
    }

    fn forward_window(&self, g: &mut Graph, pv: &ParamVars, x_norm: &Tensor) -> Var {
        let n = x_norm.dims()[0];
        let l = self.n_patches();
        let patches = g.constant(patch_view(x_norm, self.patch)); // [N, l, p]
        let emb = self.embed.forward(g, pv, patches); // [N, l, d]

        // Stage 1: cross-time attention (per entity).
        let at = self.time_attn.forward(g, pv, emb);
        let s1 = g.add(at, emb);
        let h_t = self.ln_t.forward(g, pv, s1); // [N, l, d]

        // Stage 2: cross-dimension attention (per segment, across entities).
        let h_swapped = g.swap_axes01(h_t); // [l, N, d]
        let ad = self.dim_attn.forward(g, pv, h_swapped);
        let s2 = g.add(ad, h_swapped);
        let h_d = self.ln_d.forward(g, pv, s2);
        let h = g.swap_axes01(h_d); // [N, l, d]

        let flat = g.reshape(h, &[n, l * self.d]);
        self.head.forward(g, pv, flat)
    }

    fn cost(&self, entities: usize) -> CostReport {
        let l = self.n_patches();
        self.embed.cost(entities * l)
            + self.time_attn.cost(entities, l)
            + self.ln_t.cost(entities * l)
            + self.dim_attn.cost(l, entities)
            + self.ln_d.cost(entities * l)
            + self.head.cost(entities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_core::TrainOptions;
    use focus_data::{Benchmark, MtsDataset, Split};

    #[test]
    fn forward_shape() {
        let model = Crossformer::new(32, 8, 8, 12, 0);
        let x = Tensor::from_vec((0..128).map(|v| (v as f32 * 0.15).sin()).collect(), &[4, 32]);
        let y = model.predict(&x);
        assert_eq!(y.dims(), &[4, 8]);
        assert!(y.all_finite());
    }

    #[test]
    fn trains() {
        let ds = MtsDataset::generate(Benchmark::Pems08.scaled(4, 1_000), 3);
        let mut model = Crossformer::new(48, 12, 8, 10, 1);
        let r = model.train(
            &ds,
            &TrainOptions {
                epochs: 3,
                max_windows: 16,
                ..Default::default()
            },
        );
        assert!(r.epoch_losses.last().expect("training ran at least one epoch") < &r.epoch_losses[0]);
        let m = model.evaluate(&ds, Split::Test, 48);
        assert!(m.mse().is_finite());
    }

    #[test]
    fn cost_is_quadratic_in_entities() {
        let model = Crossformer::new(64, 16, 8, 8, 2);
        let c16 = model.cost(16);
        let c64 = model.cost(64);
        // The entity-attention term is O(N²·d): growth must exceed linear.
        let ratio = c64.flops as f64 / c16.flops as f64;
        assert!(ratio > 5.0, "ratio {ratio} not superlinear in N");
    }
}
